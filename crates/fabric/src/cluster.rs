//! The cluster: request pipeline, partition placement, replication and
//! throttling.
//!
//! A request's virtual latency is assembled from the stages a real request
//! crosses (paper §IV, and the WAS SOSP'11 architecture it references):
//!
//! ```text
//! client NIC ─► LB/front-end ─► account buckets ─► partition throttle
//!   ─► partition-server FIFO (base + per-class overhead)
//!   ─► data pipes (per-blob 60 MB/s write / ~170 MB/s read, per-server,
//!       shared table front-end)
//!   ─► replica synchronization (writes; + visibility state for GetMessage)
//!   ─► response over the same pipes and NIC
//! ```
//!
//! All stages are non-preemptive FIFO resources, so each operation is
//! priced analytically at arrival (one event per op in the runtime).

use crate::backend::ThrottleShape;
use crate::faults::{FaultDecision, FaultInjector, FaultMetrics, FaultPlan};
use crate::metrics::ClusterMetrics;
use crate::metrics::{MetricsSnapshot, PartitionHeat};
use crate::params::ClusterParams;
use crate::timeline::{ClusterSample, ClusterTimeline, ResourceUsage};
use crate::trace::{Phase, PhaseBreadcrumb, TraceOutcome, TraceRecord, Tracer};
use crate::verify::{History, OpOutcome, OpRecord};
use azsim_blob::BlobStore;
use azsim_core::resource::{Admission, FifoServer, Pipe, TokenBucket};
use azsim_core::runtime::{ActorId, Model};
use azsim_core::SimTime;
use azsim_queue::QueueStore;
use azsim_storage::{
    OpClass, PartitionKey, PartitionRef, Service, StorageError, StorageOk, StorageRequest,
    StorageResult, SyncClass,
};
use azsim_table::TableStore;
use std::collections::HashMap;
use std::time::Duration;

/// All simulated resources of one partition, created the first time the
/// partition is addressed and thereafter reached through a dense interned
/// id — one hash of the *borrowed* key per operation instead of five owned
/// `HashMap<PartitionKey, _>` probes with per-op `String` clones.
///
/// Eager creation is sound because every resource's initial state is
/// creation-time independent: a [`FifoServer`] starts free, a [`Pipe`]
/// transfers zero-cost until first use, and a [`TokenBucket`] starts full
/// (refill is capped at burst, so "created long ago" ≡ "created now").
struct PartitionSlot {
    /// Owned key, materialized once (fault rules compare against it).
    key: PartitionKey,
    /// Cached partition-server placement.
    server: usize,
    /// Per-partition request serialization.
    fifo: FifoServer,
    /// Per-blob write pipe (blob partitions only).
    write_pipe: Option<Pipe>,
    /// Per-blob read pipe (blob partitions only).
    read_pipe: Option<Pipe>,
    /// 500 msg/s queue bucket or 500 entities/s table-partition bucket.
    bucket: Option<TokenBucket>,
    /// Operations addressed to this partition (hot-key heatmap).
    ops: u64,
    /// Operations rejected by this partition's throttle.
    throttled: u64,
}

/// Per-object mutation rate limiter (GCS-style backends): one token
/// bucket and consecutive-rejection counter per limited object. Blob
/// partitions are already per-object, so the object id is empty there;
/// table mutations key by row so two rows of one partition are limited
/// independently, as GCS documents.
struct ObjectUpdateLimiter {
    /// Mutations per second per object.
    rate: f64,
    /// `(slot, object id)` → (bucket, consecutive rejections).
    buckets: HashMap<(usize, String), (TokenBucket, u32)>,
}

/// The object a mutation targets under a per-object update limit, or
/// `None` when the class is not update-limited.
fn update_limited_object(req: &StorageRequest) -> Option<String> {
    match req {
        // Blob mutations: the partition slot is the blob, so the slot id
        // alone identifies the object.
        StorageRequest::PutBlock { .. }
        | StorageRequest::PutBlockList { .. }
        | StorageRequest::UploadBlockBlob { .. }
        | StorageRequest::PutPage { .. } => Some(String::new()),
        // Table mutations of an existing row.
        StorageRequest::UpdateEntity { entity, .. } => Some(entity.row_key.clone()),
        StorageRequest::DeleteEntity { row, .. } => Some(row.clone()),
        _ => None,
    }
}

/// The simulated storage cluster for one account.
pub struct Cluster {
    params: ClusterParams,
    blobs: BlobStore,
    queues: QueueStore,
    tables: TableStore,
    /// Stable hash → slot-id candidates (more than one only on a collision).
    intern: HashMap<u64, Vec<u32>>,
    /// Interned partition resources, indexed by slot id.
    slots: Vec<PartitionSlot>,
    server_rx: Vec<Pipe>,
    server_tx: Vec<Pipe>,
    table_frontend: Pipe,
    account_up: Pipe,
    account_down: Pipe,
    account_tx: TokenBucket,
    /// Consecutive account-scope throttle rejections — drives the S3
    /// `SlowDown` doubling curve and GCS pushback; reset whenever a
    /// request is admitted. Unused under WAS's deficit-hint shape.
    account_pushback: u32,
    /// Per-object mutation limiter, present iff the backend declares an
    /// object update rate (GCS).
    object_update: Option<ObjectUpdateLimiter>,
    /// Eventual list-after-write overlay, present iff the backend declares
    /// a listing visibility window (S3): `(container, blob)` → the time the
    /// blob becomes listable.
    list_visibility: Option<HashMap<(String, String), SimTime>>,
    /// Per-actor NICs, indexed by actor id (grown on demand).
    nics: Vec<Option<Pipe>>,
    /// Per-actor NIC bandwidth overrides set before first use.
    nic_overrides: Vec<Option<f64>>,
    metrics: ClusterMetrics,
    tracer: Option<Tracer>,
    timeline: Option<ClusterTimeline>,
    faults: FaultInjector,
    history: Option<History>,
}

impl Cluster {
    /// Build a cluster from parameters.
    pub fn new(params: ClusterParams) -> Self {
        // Every shared pipe is full duplex (separate uplink and downlink
        // lanes): within one operation the uplink is crossed early and the
        // downlink late, so a half-duplex pipe would let late downlink
        // timestamps falsely delay the next operation's uplink.
        let server_rx = (0..params.servers)
            .map(|_| Pipe::new(params.server_bandwidth))
            .collect();
        let server_tx = (0..params.servers)
            .map(|_| Pipe::new(params.server_bandwidth))
            .collect();
        // The backend profile decides the account transaction rate: WAS
        // uses the documented 5 000 tx/s, peers may override it, and a
        // cap-free backend (file://) gets a bucket so large it can never
        // engage — keeping the field non-optional so telemetry and
        // resource accounting are uniform across backends.
        let account_rate = if params.backend.account_cap {
            params
                .backend
                .account_rate_override
                .unwrap_or(params.account_tx_rate)
        } else {
            1e12
        };
        Cluster {
            blobs: BlobStore::new(),
            queues: QueueStore::new(params.seed, params.fifo_fuzz),
            tables: TableStore::new(),
            intern: HashMap::new(),
            slots: Vec::new(),
            server_rx,
            server_tx,
            table_frontend: Pipe::new(params.table_frontend_bandwidth),
            account_up: Pipe::new(params.account_bandwidth),
            account_down: Pipe::new(params.account_bandwidth),
            account_tx: TokenBucket::new(
                account_rate,
                params.throttle_burst.max(account_rate / 10.0),
            ),
            account_pushback: 0,
            object_update: params
                .backend
                .object_update_rate
                .map(|rate| ObjectUpdateLimiter {
                    rate,
                    buckets: HashMap::new(),
                }),
            list_visibility: params
                .backend
                .list_visibility_window
                .map(|_| HashMap::new()),
            nics: Vec::new(),
            nic_overrides: Vec::new(),
            metrics: ClusterMetrics::new(),
            tracer: None,
            timeline: params.timeline_resolution.map(ClusterTimeline::new),
            faults: FaultInjector::inert(),
            history: None,
            params,
        }
    }

    /// Dense id for a partition, creating its resources on first sight.
    fn intern(&mut self, pr: PartitionRef<'_>) -> usize {
        let h = pr.stable_hash();
        let ids = self.intern.entry(h).or_default();
        for &id in ids.iter() {
            if pr.matches(&self.slots[id as usize].key) {
                return id as usize;
            }
        }
        let id = self.slots.len() as u32;
        ids.push(id);
        let key = pr.to_key();
        let p = &self.params;
        let (write_pipe, read_pipe, bucket) = match &key {
            PartitionKey::Blob { .. } => (
                Some(Pipe::new(p.blob_write_bandwidth)),
                Some(Pipe::new(p.blob_read_bandwidth)),
                None,
            ),
            PartitionKey::Queue { .. } => (
                None,
                None,
                p.backend
                    .per_partition_caps
                    .then(|| TokenBucket::new(p.queue_rate, p.throttle_burst)),
            ),
            PartitionKey::Table { .. } => (
                None,
                None,
                p.backend
                    .per_partition_caps
                    .then(|| TokenBucket::new(p.partition_rate, p.throttle_burst)),
            ),
            PartitionKey::Control => (None, None, None),
        };
        self.slots.push(PartitionSlot {
            server: pr.server_index(p.servers),
            key,
            fifo: FifoServer::new(),
            write_pipe,
            read_pipe,
            bucket,
            ops: 0,
            throttled: 0,
        });
        id as usize
    }

    /// A cluster with default parameters.
    pub fn with_defaults() -> Self {
        Self::new(ClusterParams::default())
    }

    /// Override one role instance's NIC bandwidth (bytes/s) — used by the
    /// compute layer to express VM sizes. Must be called before the actor's
    /// first request.
    pub fn set_actor_nic(&mut self, actor: usize, bytes_per_sec: f64) {
        if actor >= self.nic_overrides.len() {
            self.nic_overrides.resize(actor + 1, None);
        }
        self.nic_overrides[actor] = Some(bytes_per_sec);
    }

    /// Cluster parameters.
    pub fn params(&self) -> &ClusterParams {
        &self.params
    }

    /// Server-side metrics.
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    /// Install a fault plan. The default plan is inert; a non-inert plan
    /// makes the cluster inject the scheduled and probabilistic faults it
    /// describes. Install before the first request for reproducibility.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = FaultInjector::new(plan);
    }

    /// Counters of injected faults (all zero under the inert default).
    pub fn fault_metrics(&self) -> &FaultMetrics {
        self.faults.metrics()
    }

    /// Record one ground-truth [`OpRecord`] per submitted operation —
    /// including whether timed-out operations secretly executed. Off by
    /// default (one branch per op when off); enable for verification runs.
    pub fn enable_history(&mut self) {
        self.history = Some(History::default());
    }

    /// The recorded ground-truth history, if enabled.
    pub fn history(&self) -> Option<&History> {
        self.history.as_ref()
    }

    /// Ground-truth audit of one queue's live messages at `now` — the
    /// final-state evidence the verification layer checks invariants
    /// against (bypasses pricing, faults and metrics entirely).
    pub fn queue_audit(
        &self,
        now: SimTime,
        name: &str,
    ) -> azsim_storage::StorageResult<Vec<azsim_queue::AuditedMessage>> {
        self.queues.audit(now, name)
    }

    /// Ground-truth point read of one table entity (verification only;
    /// bypasses pricing, faults and metrics).
    pub fn table_entity(
        &self,
        table: &str,
        partition: &str,
        row: &str,
    ) -> Option<azsim_storage::Entity> {
        self.tables
            .query(table, partition, row)
            .ok()
            .flatten()
            .map(|(e, _)| e)
    }

    /// Append one history record (no-op unless history is enabled).
    #[allow(clippy::too_many_arguments)]
    fn record_op(
        &mut self,
        issued: SimTime,
        completed: SimTime,
        actor: usize,
        class: OpClass,
        slot: usize,
        outcome: OpOutcome,
    ) {
        if let Some(h) = &mut self.history {
            h.push(OpRecord {
                issued,
                completed,
                actor,
                class,
                partition: self.slots[slot].key.clone(),
                outcome,
            });
        }
    }

    /// Exportable snapshot of everything the cluster measured: per-class
    /// counters, fault tallies, the hottest partitions (top 64 by op count,
    /// ties broken by label), and — when phase profiling is enabled —
    /// per-class/per-phase latency histograms.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut heat: Vec<PartitionHeat> = self
            .slots
            .iter()
            .filter(|s| s.ops > 0)
            .map(|s| PartitionHeat {
                partition: s.key.to_string(),
                server: s.server,
                ops: s.ops,
                throttled: s.throttled,
            })
            .collect();
        heat.sort_by(|a, b| {
            b.ops
                .cmp(&a.ops)
                .then_with(|| a.partition.cmp(&b.partition))
        });
        heat.truncate(64);
        MetricsSnapshot::build(
            &self.metrics,
            self.faults.metrics(),
            heat,
            self.tracer.as_ref().and_then(|t| t.phase_stats()),
        )
    }

    /// Record one [`TraceRecord`] per operation, keeping at most
    /// `capacity` records. Off by default.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.tracer = Some(Tracer::with_capacity(capacity));
    }

    /// Stream every operation into a per-class/per-phase aggregate without
    /// retaining records — O(1) memory per operation. If a record buffer is
    /// already enabled, aggregation is added alongside it.
    pub fn enable_phase_profiling(&mut self) {
        match &mut self.tracer {
            Some(tr) => tr.enable_aggregation(),
            None => self.tracer = Some(Tracer::aggregate_only()),
        }
    }

    /// Sample the gauge timeline (token-bucket fill, FIFO backlog,
    /// inflight ops, fault windows, …) at the given virtual-time
    /// resolution. Off by default — and when off, the per-operation cost
    /// is a single branch. Sampling is passive, so completion times are
    /// bit-identical with the timeline on or off.
    pub fn enable_timeline(&mut self, resolution: Duration) {
        self.timeline = Some(ClusterTimeline::new(resolution));
    }

    /// The gauge timeline, if sampling is enabled.
    pub fn timeline(&self) -> Option<&ClusterTimeline> {
        self.timeline.as_ref()
    }

    /// Time-weighted usage of every cluster resource over `[0, end]`:
    /// token buckets (saturation needs the timeline enabled; throttle
    /// counts are always exact), partition FIFOs and all shared pipes
    /// (busy-time utilization, exact regardless of the timeline). Rows
    /// come out in a fixed construction order; consumers rank them.
    pub fn resource_usage(&self, end: SimTime) -> Vec<ResourceUsage> {
        let window = end.saturating_since(SimTime::ZERO);
        let mut out = Vec::new();
        out.push(ResourceUsage {
            resource: "account_tx".into(),
            kind: "token_bucket".into(),
            saturation: self
                .timeline
                .as_ref()
                .map(|tl| tl.account_tx_saturation(end))
                .unwrap_or(0.0),
            throttled: self.account_tx.throttle_count(),
            busy_s: 0.0,
        });
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.ops == 0 {
                continue;
            }
            let label = slot.key.to_string();
            if let Some(bucket) = &slot.bucket {
                out.push(ResourceUsage {
                    resource: format!("bucket:{label}"),
                    kind: "token_bucket".into(),
                    saturation: self
                        .timeline
                        .as_ref()
                        .and_then(|tl| tl.slot_saturation(i, end))
                        .unwrap_or(0.0),
                    throttled: bucket.throttle_count(),
                    busy_s: 0.0,
                });
            }
            if let Some(pipe) = &slot.write_pipe {
                if pipe.bytes_transferred() > 0 {
                    out.push(ResourceUsage::busy(
                        format!("pipe:blob-write:{label}"),
                        "pipe",
                        pipe.busy_time(),
                        window,
                    ));
                }
            }
            if let Some(pipe) = &slot.read_pipe {
                if pipe.bytes_transferred() > 0 {
                    out.push(ResourceUsage::busy(
                        format!("pipe:blob-read:{label}"),
                        "pipe",
                        pipe.busy_time(),
                        window,
                    ));
                }
            }
            if slot.fifo.busy_time() > Duration::ZERO {
                out.push(ResourceUsage::busy(
                    format!("fifo:{label}"),
                    "fifo",
                    slot.fifo.busy_time(),
                    window,
                ));
            }
        }
        if self.table_frontend.bytes_transferred() > 0 {
            out.push(ResourceUsage::busy(
                "pipe:table_frontend".into(),
                "pipe",
                self.table_frontend.busy_time(),
                window,
            ));
        }
        out.push(ResourceUsage::busy(
            "pipe:account_up".into(),
            "pipe",
            self.account_up.busy_time(),
            window,
        ));
        out.push(ResourceUsage::busy(
            "pipe:account_down".into(),
            "pipe",
            self.account_down.busy_time(),
            window,
        ));
        // Server and NIC pipes are numerous and rarely the binding limit:
        // report only the busiest of each family (ties: lowest index).
        let busiest = |pipes: &[Pipe]| -> Option<(usize, Duration)> {
            pipes
                .iter()
                .enumerate()
                .map(|(i, p)| (i, p.busy_time()))
                .filter(|(_, b)| *b > Duration::ZERO)
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        };
        if let Some((i, b)) = busiest(&self.server_rx) {
            out.push(ResourceUsage::busy(
                format!("pipe:server_rx:{i}"),
                "pipe",
                b,
                window,
            ));
        }
        if let Some((i, b)) = busiest(&self.server_tx) {
            out.push(ResourceUsage::busy(
                format!("pipe:server_tx:{i}"),
                "pipe",
                b,
                window,
            ));
        }
        let nic = self
            .nics
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|p| (i, p.busy_time())))
            .filter(|(_, b)| *b > Duration::ZERO)
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)));
        if let Some((i, b)) = nic {
            out.push(ResourceUsage::busy(
                format!("pipe:nic:{i}"),
                "pipe",
                b,
                window,
            ));
        }
        out
    }

    /// The trace buffer, if tracing is enabled.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Mutable trace sink, if tracing is enabled (client harnesses use this
    /// to fold retry-phase spans into the aggregate).
    pub fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        self.tracer.as_mut()
    }

    /// Read access to the blob namespace (tests, examples).
    pub fn blob_store(&self) -> &BlobStore {
        &self.blobs
    }

    /// Mutable access to the queue namespace (tests, fault injection).
    pub fn queue_store_mut(&mut self) -> &mut QueueStore {
        &mut self.queues
    }

    /// Read access to the table namespace.
    pub fn table_store(&self) -> &TableStore {
        &self.tables
    }

    fn nic(&mut self, actor: usize) -> &mut Pipe {
        if actor >= self.nics.len() {
            self.nics.resize_with(actor + 1, || None);
        }
        self.nics[actor].get_or_insert_with(|| {
            let bw = self
                .nic_overrides
                .get(actor)
                .copied()
                .flatten()
                .unwrap_or(self.params.default_nic_bandwidth);
            Pipe::new(bw)
        })
    }

    /// Per-class service-time overhead on the partition server. This is
    /// where the blob-path asymmetries live (block staging vs page write,
    /// sequential block read vs random page locate).
    fn class_overhead(&self, class: OpClass) -> Duration {
        let p = &self.params;
        match class {
            OpClass::BlobPutPage => p.page_write_overhead,
            OpClass::BlobPutBlock | OpClass::BlobUploadSingle => p.block_write_overhead,
            OpClass::BlobPutBlockList => p.block_commit_overhead,
            OpClass::BlobGetBlock => p.get_block_overhead,
            OpClass::BlobGetPage => p.get_page_overhead,
            OpClass::BlobDownload => p.download_overhead,
            OpClass::BlobCreateContainer
            | OpClass::BlobCreatePage
            | OpClass::BlobDelete
            | OpClass::BlobList => Duration::from_millis(1),
            OpClass::QueueCreate | OpClass::QueueDelete | OpClass::QueueClear => {
                Duration::from_millis(1)
            }
            OpClass::QueuePut
            | OpClass::QueueGet
            | OpClass::QueuePeek
            | OpClass::QueueDeleteMsg
            | OpClass::QueueCount => p.queue_op_service,
            OpClass::TableCreate | OpClass::TableDelete => Duration::from_millis(1),
            // An entity-group transaction is one round trip and one log
            // append: base table service regardless of operation count
            // (per-row work is priced via occupancy in `submit`).
            OpClass::TableBatch => p.table_op_service,
            OpClass::TableUpdate => p.table_op_service + p.table_update_extra,
            OpClass::TableDeleteEntity => p.table_op_service + p.table_delete_extra,
            OpClass::TableInsert | OpClass::TableQuery | OpClass::TableQueryPartition => {
                p.table_op_service
            }
        }
    }

    /// Deterministic listing lag for one blob in `[0, window]`: FNV-1a over
    /// the blob address and cluster seed, scaled into the window. A fixed
    /// hash (not the std hasher) keeps the lag stable across toolchains, so
    /// per-backend golden CSVs stay bit-identical.
    fn listing_lag(&self, container: &str, blob: &str, window: Duration) -> Duration {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET ^ self.params.seed;
        for byte in container
            .as_bytes()
            .iter()
            .chain([0xffu8].iter())
            .chain(blob.as_bytes())
        {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
        window.mul_f64((h >> 11) as f64 / (1u64 << 53) as f64)
    }

    /// Record when a freshly committed blob becomes listable (no-op unless
    /// the backend declares a visibility window). `entry().or_insert` keeps
    /// visibility monotonic: overwriting an already-listable blob never
    /// makes it flicker back out of listings.
    fn note_blob_listable(&mut self, now: SimTime, container: &str, blob: &str) {
        let Some(window) = self.params.backend.list_visibility_window else {
            return;
        };
        let lag = self.listing_lag(container, blob, window);
        if let Some(map) = self.list_visibility.as_mut() {
            map.entry((container.to_string(), blob.to_string()))
                .or_insert(now + lag);
        }
    }

    /// Execute the state transition at the partition's service-start time.
    fn apply(&mut self, now: SimTime, req: &StorageRequest) -> StorageResult<StorageOk> {
        use StorageRequest::*;
        match req {
            CreateContainer { container } => self
                .blobs
                .create_container(container)
                .map(|_| StorageOk::Ack),
            PutBlock {
                container,
                blob,
                block_id,
                data,
            } => self
                .blobs
                .put_block(container, blob, block_id.clone(), data.clone())
                .map(|_| StorageOk::Ack),
            PutBlockList {
                container,
                blob,
                block_ids,
            } => {
                let r = self.blobs.put_block_list(container, blob, block_ids);
                if r.is_ok() {
                    self.note_blob_listable(now, container, blob);
                }
                r.map(|_| StorageOk::Ack)
            }
            UploadBlockBlob {
                container,
                blob,
                data,
            } => {
                let r = self.blobs.upload_block_blob(container, blob, data.clone());
                if r.is_ok() {
                    self.note_blob_listable(now, container, blob);
                }
                r.map(|_| StorageOk::Ack)
            }
            GetBlock {
                container,
                blob,
                index,
            } => self
                .blobs
                .get_block(container, blob, *index)
                .map(StorageOk::Data),
            DownloadBlob { container, blob } => {
                self.blobs.download(container, blob).map(StorageOk::Data)
            }
            CreatePageBlob {
                container,
                blob,
                size,
            } => {
                let r = self.blobs.create_page_blob(container, blob, *size);
                if r.is_ok() {
                    self.note_blob_listable(now, container, blob);
                }
                r.map(|_| StorageOk::Ack)
            }
            PutPage {
                container,
                blob,
                offset,
                data,
            } => self
                .blobs
                .put_page(container, blob, *offset, data.clone())
                .map(|_| StorageOk::Ack),
            GetPage {
                container,
                blob,
                offset,
                length,
            } => self
                .blobs
                .get_page(container, blob, *offset, *length)
                .map(StorageOk::Data),
            DeleteBlob { container, blob } => {
                let r = self.blobs.delete(container, blob);
                if r.is_ok() {
                    if let Some(map) = self.list_visibility.as_mut() {
                        map.remove(&(container.clone(), blob.clone()));
                    }
                }
                r.map(|_| StorageOk::Ack)
            }
            ListBlobs { container } => {
                let names = self.blobs.list_blobs(container)?;
                // Eventual list-after-write: suppress blobs whose listing
                // visibility time has not arrived yet. Blobs without an
                // entry predate the overlay's knowledge and list normally.
                let names = match &self.list_visibility {
                    Some(map) => names
                        .into_iter()
                        .filter(|b| {
                            map.get(&(container.clone(), b.clone()))
                                .is_none_or(|&visible_at| visible_at <= now)
                        })
                        .collect(),
                    None => names,
                };
                Ok(StorageOk::Names(names))
            }
            CreateQueue { queue } => self.queues.create_queue(queue).map(|_| StorageOk::Ack),
            DeleteQueue { queue } => self.queues.delete_queue(queue).map(|_| StorageOk::Ack),
            PutMessage { queue, data, ttl } => self
                .queues
                .put(now, queue, data.clone(), *ttl)
                .map(|_| StorageOk::Ack),
            GetMessage {
                queue,
                visibility_timeout,
            } => self
                .queues
                .get(now, queue, *visibility_timeout)
                .map(StorageOk::Message),
            PeekMessage { queue } => self.queues.peek(now, queue).map(StorageOk::Peeked),
            DeleteMessage {
                queue,
                id,
                pop_receipt,
            } => self
                .queues
                .delete_message(queue, *id, *pop_receipt)
                .map(|_| StorageOk::Ack),
            GetMessageCount { queue } => self
                .queues
                .approximate_count(now, queue)
                .map(StorageOk::Count),
            ClearQueue { queue } => self.queues.clear(queue).map(StorageOk::Count),
            CreateTable { table } => self.tables.create_table(table).map(|_| StorageOk::Ack),
            DeleteTable { table } => self.tables.delete_table(table).map(|_| StorageOk::Ack),
            InsertEntity { table, entity } => self
                .tables
                .insert(table, entity.clone())
                .map(StorageOk::Tag),
            QueryEntity {
                table,
                partition,
                row,
            } => self
                .tables
                .query(table, partition, row)
                .map(StorageOk::Entity),
            QueryPartition { table, partition } => self
                .tables
                .query_partition(table, partition)
                .map(StorageOk::Entities),
            UpdateEntity {
                table,
                entity,
                condition,
            } => self
                .tables
                .update(table, entity.clone(), *condition)
                .map(StorageOk::Tag),
            ExecuteBatch {
                table,
                partition,
                ops,
            } => self
                .tables
                .execute_batch(table, partition, ops)
                .map(StorageOk::BatchTags),
            DeleteEntity {
                table,
                partition,
                row,
                condition,
            } => self
                .tables
                .delete(table, partition, row, *condition)
                .map(|_| StorageOk::Ack),
        }
    }

    /// Check the backend's declared rate limits; on rejection the caller
    /// returns the shaped throttle error without touching the partition.
    ///
    /// The account bucket fires with the backend's declared shape: WAS
    /// returns `ServerBusy` carrying the bucket's computed deficit floored
    /// at the coarse retry hint; S3 returns `SlowDown` with a hint that
    /// doubles per consecutive rejection; GCS returns `ServerBusy` with the
    /// same exponential escalation. Per-partition buckets exist only where
    /// the profile declares them (WAS) and keep WAS's hint shape; the
    /// per-object update limiter (GCS) escalates independently per object.
    fn throttle(
        &mut self,
        t: SimTime,
        class: OpClass,
        slot: usize,
        req: &StorageRequest,
    ) -> Result<(), StorageError> {
        if class.is_control() {
            return Ok(());
        }
        let shape = self.params.backend.throttle;
        let hint = self.params.throttle_retry_hint;
        if let Admission::Throttled(w) = self.account_tx.acquire(t, 1.0) {
            self.account_pushback = self.account_pushback.saturating_add(1);
            let retry_after = shape.retry_after(self.account_pushback, w, hint);
            return Err(match shape {
                ThrottleShape::SlowDownCurve { .. } => StorageError::SlowDown { retry_after },
                _ => StorageError::ServerBusy { retry_after },
            });
        }
        // Queue partitions carry the 500 msg/s bucket and table partitions
        // the 500 entities/s bucket; blob scalability is bandwidth-limited
        // (per-blob pipes), not transaction-limited, so blob slots have no
        // bucket at all.
        if let Some(bucket) = self.slots[slot].bucket.as_mut() {
            if let Admission::Throttled(w) = bucket.acquire(t, 1.0) {
                return Err(StorageError::ServerBusy {
                    retry_after: w.max(hint),
                });
            }
        }
        if let Some(lim) = self.object_update.as_mut() {
            if let Some(object) = update_limited_object(req) {
                let rate = lim.rate;
                let (bucket, pushback) = lim
                    .buckets
                    .entry((slot, object))
                    .or_insert_with(|| (TokenBucket::new(rate, 1.0), 0));
                if let Admission::Throttled(w) = bucket.acquire(t, 1.0) {
                    *pushback = pushback.saturating_add(1);
                    let retry_after = shape.retry_after(*pushback, w, hint);
                    return Err(StorageError::ServerBusy { retry_after });
                }
                *pushback = 0;
            }
        }
        self.account_pushback = 0;
        Ok(())
    }

    /// Sample every instrumented gauge at one arrival (no-op unless the
    /// timeline is enabled). Reads only side-effect-free accessors, so the
    /// simulated outcome is untouched.
    fn sample_timeline(&mut self, now: SimTime, actor: usize, slot: usize) {
        let Some(tl) = self.timeline.as_mut() else {
            return;
        };
        let backlog = |free: SimTime| free.saturating_since(now).as_secs_f64();
        let s = &self.slots[slot];
        tl.observe_slot(
            now,
            slot,
            &s.key,
            s.bucket.as_ref().map(|b| b.fill(now)),
            s.write_pipe.as_ref().map(|p| backlog(p.next_free())),
            backlog(s.fifo.next_free()),
        );
        tl.observe_cluster(
            now,
            ClusterSample {
                account_tx_fill: self.account_tx.fill(now),
                up_backlog_s: backlog(self.account_up.next_free()),
                down_backlog_s: backlog(self.account_down.next_free()),
                table_frontend_backlog_s: backlog(self.table_frontend.next_free()),
                nic_backlog_s: self
                    .nics
                    .get(actor)
                    .and_then(|n| n.as_ref())
                    .map(|p| backlog(p.next_free())),
                fault_windows: self.faults.active_windows(now),
            },
        );
    }

    /// Sample the cluster-wide gauges at `now` without an accompanying
    /// arrival (no-op unless the timeline is enabled). Virtual-time runs
    /// sample on every arrival; live mode calls this on a periodic
    /// wall-clock cadence so the recorder carries the same gauge and
    /// counter series either way. Reads only side-effect-free accessors.
    /// Per-partition series are skipped: without an arrival there is no
    /// current slot, and the cluster-wide gauges are the live dashboards'
    /// payload.
    pub fn flush_timeline(&mut self, now: SimTime) {
        let Some(tl) = self.timeline.as_mut() else {
            return;
        };
        let backlog = |free: SimTime| free.saturating_since(now).as_secs_f64();
        tl.observe_cluster(
            now,
            ClusterSample {
                account_tx_fill: self.account_tx.fill(now),
                up_backlog_s: backlog(self.account_up.next_free()),
                down_backlog_s: backlog(self.account_down.next_free()),
                table_frontend_backlog_s: backlog(self.table_frontend.next_free()),
                nic_backlog_s: None,
                fault_windows: self.faults.active_windows(now),
            },
        );
        if let Some(tl) = self.timeline.as_mut() {
            tl.flush_counters(now);
        }
    }

    /// Account one outcome on the timeline (no-op unless enabled).
    fn timeline_outcome(&mut self, now: SimTime, done: SimTime, throttled: bool) {
        if let Some(tl) = self.timeline.as_mut() {
            tl.note_outcome(now, done, throttled);
        }
    }

    /// Record one trace row, if tracing is on.
    #[allow(clippy::too_many_arguments)]
    fn trace(
        &mut self,
        issued: SimTime,
        completed: SimTime,
        actor: usize,
        class: OpClass,
        outcome: TraceOutcome,
        bytes_up: u64,
        bytes_down: u64,
        phases: PhaseBreadcrumb,
    ) {
        if let Some(tr) = &mut self.tracer {
            tr.record(TraceRecord {
                issued,
                completed,
                actor,
                class,
                outcome,
                bytes_up,
                bytes_down,
                phases,
            });
        }
    }

    /// Breadcrumb for a request rejected (or dropped) at `rejected` after
    /// reaching the front end, completing at `done`: the time before the
    /// rejection point is client send, the rest is the rejection round trip
    /// (or the elapsed timeout of a drop).
    fn reject_phases(issued: SimTime, rejected: SimTime, done: SimTime) -> PhaseBreadcrumb {
        let mut phases = PhaseBreadcrumb::new();
        phases.add(Phase::ClientSend, rejected.saturating_since(issued));
        phases.add(Phase::Rejection, done.saturating_since(rejected));
        phases
    }

    /// Whether the 16 KB `GetMessage` anomaly applies to this payload.
    fn quirk_applies(&self, class: OpClass, bytes_down: u64) -> bool {
        self.params.quirk_get16k
            && class == OpClass::QueueGet
            && (12 * 1024 < bytes_down && bytes_down <= 24 * 1024)
    }

    /// Price and execute one request arriving at `now` from `actor`.
    /// Returns `(completion_time, result)`.
    pub fn submit(
        &mut self,
        now: SimTime,
        actor: usize,
        req: &StorageRequest,
    ) -> (SimTime, StorageResult<StorageOk>) {
        let class = req.class();
        let slot = self.intern(req.partition_ref());
        self.slots[slot].ops += 1;
        if self.timeline.is_some() {
            self.sample_timeline(now, actor, slot);
        }
        let up = req.payload_bytes_up();
        let p_frontend_rtt = self.params.frontend_rtt;

        // Uplink: client NIC, then LB/front-end.
        let (_, mut t) = self.nic(actor).transfer(now, up);
        t += p_frontend_rtt;

        // Fault injection (inert by default). Faults fire where a real
        // cluster produces them: storms at the front end, crash/blackout
        // at the partition server, drops anywhere in between. An ack loss
        // does *not* divert the request: it proceeds through throttles,
        // state transition and replication, and only the response is lost.
        let sidx = self.slots[slot].server;
        let t_fault = t;
        let mut ack_loss: Option<Duration> = None;
        match self.faults.decide(t, class, &self.slots[slot].key, sidx) {
            FaultDecision::None => {}
            FaultDecision::AckLoss { elapsed } => ack_loss = Some(elapsed),
            FaultDecision::Busy { retry_after } => {
                self.metrics.counter_mut(class).throttled += 1;
                let done = t + Duration::from_millis(1);
                self.timeline_outcome(now, done, true);
                let phases = Self::reject_phases(now, t, done);
                self.trace(
                    now,
                    done,
                    actor,
                    class,
                    TraceOutcome::Throttled,
                    up,
                    0,
                    phases,
                );
                self.record_op(now, done, actor, class, slot, OpOutcome::Throttled);
                return (done, Err(StorageError::ServerBusy { retry_after }));
            }
            FaultDecision::Fault { retry_after } => {
                self.metrics.counter_mut(class).failed += 1;
                let done = t + Duration::from_millis(1);
                self.timeline_outcome(now, done, false);
                let phases = Self::reject_phases(now, t, done);
                self.trace(
                    now,
                    done,
                    actor,
                    class,
                    TraceOutcome::Faulted,
                    up,
                    0,
                    phases,
                );
                self.record_op(now, done, actor, class, slot, OpOutcome::Faulted);
                return (done, Err(StorageError::ServerFault { retry_after }));
            }
            FaultDecision::Drop { elapsed } => {
                // The request vanishes; the client's wait expires. No
                // state transition happens server-side.
                self.metrics.counter_mut(class).failed += 1;
                let done = t + elapsed;
                self.timeline_outcome(now, done, false);
                if let Some(tl) = self.timeline.as_mut() {
                    tl.note_ambiguous(now);
                }
                let phases = Self::reject_phases(now, t, done);
                self.trace(
                    now,
                    done,
                    actor,
                    class,
                    TraceOutcome::TimedOut,
                    up,
                    0,
                    phases,
                );
                self.record_op(now, done, actor, class, slot, OpOutcome::TimedOutLost);
                return (done, Err(StorageError::Timeout { elapsed }));
            }
        }

        // Declared rate limits, shaped per backend: WAS surfaces the token
        // bucket's computed deficit floored at the coarse Retry-After, S3
        // a doubling SlowDown curve, GCS exponential pushback.
        if let Err(throttle_err) = self.throttle(t, class, slot, req) {
            self.slots[slot].throttled += 1;
            let c = self.metrics.counter_mut(class);
            c.throttled += 1;
            if let Some(elapsed) = ack_loss {
                // The throttle rejected the request before it executed,
                // but the (rejection) response is the part that gets lost:
                // the client still observes an opaque timeout.
                let done = t_fault + elapsed;
                self.timeline_outcome(now, done, true);
                if let Some(tl) = self.timeline.as_mut() {
                    tl.note_ambiguous(now);
                }
                let phases = Self::reject_phases(now, t, done);
                self.trace(
                    now,
                    done,
                    actor,
                    class,
                    TraceOutcome::TimedOut,
                    up,
                    0,
                    phases,
                );
                self.record_op(now, done, actor, class, slot, OpOutcome::TimedOutLost);
                return (done, Err(StorageError::Timeout { elapsed }));
            }
            // The rejection itself is a fast round trip.
            let done = t + Duration::from_millis(1);
            self.timeline_outcome(now, done, true);
            let phases = Self::reject_phases(now, t, done);
            self.trace(
                now,
                done,
                actor,
                class,
                TraceOutcome::Throttled,
                up,
                0,
                phases,
            );
            self.record_op(now, done, actor, class, slot, OpOutcome::Throttled);
            return (done, Err(throttle_err));
        }

        // Account + server data path for the uplink payload.
        let (_, t2) = self.account_up.transfer(t, up);
        t = t2;
        let (_, t2) = self.server_rx[sidx].transfer(t, up);
        t = t2;
        // Blob writes additionally cross the per-blob write pipe
        // (the 60 MB/s single-blob target).
        if matches!(
            class,
            OpClass::BlobPutBlock | OpClass::BlobPutPage | OpClass::BlobUploadSingle
        ) {
            let pipe = self.slots[slot]
                .write_pipe
                .as_mut()
                .expect("blob write targets a blob partition");
            let (_, t2) = pipe.transfer(t, up);
            t = t2;
        }

        // Partition-server FIFO, serialized per partition (the unit of
        // serialization in WAS). Partition servers pipeline requests, so a
        // request's *occupancy* (the slot time that limits partition
        // throughput) can be smaller than its client-visible service
        // latency; the residual is added after the FIFO as pure latency.
        // For table ops the occupancy is sized so the documented 500
        // entities/s bucket — not raw server saturation — binds first.
        let service = self.params.server_base_service + self.class_overhead(class);
        let occupancy = if class.service() == Service::Table && !class.is_control() {
            let base = self.params.server_base_service + self.params.table_op_occupancy;
            if let StorageRequest::ExecuteBatch { ops, .. } = req {
                // Batched rows share the slot but each adds a little
                // per-row work on the partition server.
                base + Duration::from_micros(200) * ops.len() as u32
            } else {
                base
            }
        } else {
            service
        };
        let latency_extra = service.saturating_sub(occupancy);
        let t_arrive = t;
        let (start, t_fifo) = self.slots[slot].fifo.admit(t, occupancy);
        let mut t = t_fifo + latency_extra;

        // Execute the state transition at service start.
        let result = self.apply(start, req);
        let down = result
            .as_ref()
            .map(|ok| ok.payload_bytes_down())
            .unwrap_or(0);

        if result.is_ok() {
            // The paper's unexplained 16 KB GetMessage anomaly, modeled as a
            // server-side service-time pathology at that payload bucket.
            if self.quirk_applies(class, down) {
                let extra = (self.params.queue_op_service
                    + self.params.replica_sync
                    + self.params.state_sync)
                    .mul_f64(self.params.quirk_get16k_factor - 1.0);
                t += extra;
            }
        }
        let t_service_end = t;
        if result.is_ok() {
            // Strong consistency: replicate writes; GetMessage also
            // propagates visibility state. An injected stall models a
            // slow secondary holding up the synchronous ack.
            match class.sync_class() {
                SyncClass::ReadPrimary => {}
                SyncClass::Replicate => {
                    t += self.params.replica_sync;
                    if let Some(stall) = self.faults.replica_stall() {
                        t += stall;
                    }
                }
                SyncClass::ReplicateState => {
                    t = t + self.params.replica_sync + self.params.state_sync;
                    if let Some(stall) = self.faults.replica_stall() {
                        t += stall;
                    }
                }
            }
        }
        let t_replica_end = t;

        // Mid-window crash semantics: a crash that begins while a
        // replicated write is still syncing applies the write on the
        // primary but the ack never leaves the dying server — the client
        // observes a timeout for an operation that executed.
        if ack_loss.is_none()
            && result.is_ok()
            && !matches!(class.sync_class(), SyncClass::ReadPrimary)
        {
            ack_loss = self.faults.ack_cut_by_crash(sidx, start, t_replica_end);
        }

        // Downlink: blob reads cross the per-blob read path; table payloads
        // cross the shared table front-end; everything crosses the server,
        // account and NIC pipes.
        if down > 0
            && matches!(
                class,
                OpClass::BlobGetBlock | OpClass::BlobGetPage | OpClass::BlobDownload
            )
        {
            let pipe = self.slots[slot]
                .read_pipe
                .as_mut()
                .expect("blob read targets a blob partition");
            let (_, t2) = pipe.transfer(t, down);
            t = t2;
        }
        if class.service() == Service::Table && !class.is_control() {
            let (_, t2) = self.table_frontend.transfer(t, up + down);
            t = t2;
        }
        let (_, t2) = self.server_tx[sidx].transfer(t, down);
        t = t2;
        let (_, t2) = self.account_down.transfer(t, down);
        t = t2;
        let (_, t2) = self.nic(actor).transfer(t, down);
        t = t2;

        // A lost ack: the operation ran to completion above (state
        // transition, replication, even the response transfers — the loss
        // happens en route), but the client's wait expires instead. The
        // server-side ledger still counts the execution; the client-side
        // latency histogram does not see a sample because no response
        // arrived.
        if let Some(elapsed) = ack_loss {
            let done = (t_fault + elapsed).max(t);
            let c = self.metrics.counter_mut(class);
            match &result {
                Ok(_) => {
                    c.completed += 1;
                    c.bytes_up += up;
                }
                Err(_) => c.failed += 1,
            }
            self.timeline_outcome(now, done, false);
            if let Some(tl) = self.timeline.as_mut() {
                tl.note_ambiguous(now);
            }
            let mut phases = PhaseBreadcrumb::new();
            phases.add(Phase::ClientSend, t_arrive.saturating_since(now));
            phases.add(Phase::QueueWait, start.saturating_since(t_arrive));
            phases.add(Phase::Service, t_service_end.saturating_since(start));
            phases.add(
                Phase::ReplicaSync,
                t_replica_end.saturating_since(t_service_end),
            );
            phases.add(Phase::Rejection, done.saturating_since(t_replica_end));
            self.trace(
                now,
                done,
                actor,
                class,
                TraceOutcome::TimedOut,
                up,
                0,
                phases,
            );
            let outcome = if result.is_ok() {
                OpOutcome::TimedOutExecuted
            } else {
                // The request reached the server but the state machine
                // rejected it (e.g. AlreadyExists): nothing changed, and
                // the definite answer was lost with the ack.
                OpOutcome::TimedOutLost
            };
            self.record_op(now, done, actor, class, slot, outcome);
            return (done, Err(StorageError::Timeout { elapsed }));
        }

        // Account for the op.
        let c = self.metrics.counter_mut(class);
        match &result {
            Ok(_) => {
                c.completed += 1;
                c.bytes_up += up;
                c.bytes_down += down;
                c.latency.record((t - now).as_secs_f64());
            }
            Err(_) => c.failed += 1,
        }
        self.timeline_outcome(now, t, false);
        let outcome = if result.is_ok() {
            TraceOutcome::Ok
        } else {
            TraceOutcome::Failed
        };
        // Stage boundaries partition [now, t] exactly: client send up to
        // FIFO arrival, queue wait to service start, service through the
        // quirk, replica sync, then the downlink transfer.
        let mut phases = PhaseBreadcrumb::new();
        phases.add(Phase::ClientSend, t_arrive.saturating_since(now));
        phases.add(Phase::QueueWait, start.saturating_since(t_arrive));
        phases.add(Phase::Service, t_service_end.saturating_since(start));
        phases.add(
            Phase::ReplicaSync,
            t_replica_end.saturating_since(t_service_end),
        );
        phases.add(Phase::Transfer, t.saturating_since(t_replica_end));
        self.trace(now, t, actor, class, outcome, up, down, phases);
        let op_outcome = if result.is_ok() {
            OpOutcome::Ok
        } else {
            OpOutcome::Error
        };
        self.record_op(now, t, actor, class, slot, op_outcome);
        (t, result)
    }
}

impl Model for Cluster {
    type Req = StorageRequest;
    type Resp = StorageResult<StorageOk>;

    fn handle(
        &mut self,
        now: SimTime,
        actor: ActorId,
        req: StorageRequest,
    ) -> (SimTime, StorageResult<StorageOk>) {
        self.submit(now, actor.0, &req)
    }
}

impl azsim_core::ShardableModel for Cluster {
    /// One storage account is fully coupled — every request crosses the
    /// shared account pipes and transaction bucket — so a `Cluster` only
    /// splits into itself. Run single-account scenarios under
    /// `ShardPlan::colocated`; multi-account parallelism lives in
    /// [`crate::fleet::Fleet`], where the account boundary is the partition
    /// boundary.
    fn split(self, partitions: u32) -> Vec<Self> {
        assert_eq!(
            partitions, 1,
            "a Cluster models one account and cannot be split across \
             partitions (use Fleet for multi-account plans)"
        );
        vec![self]
    }

    fn merge(mut parts: Vec<Self>) -> Self {
        assert_eq!(parts.len(), 1, "Cluster::merge expects one partition");
        parts.pop().expect("one partition")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn cluster() -> Cluster {
        Cluster::with_defaults()
    }

    fn put_msg(queue: &str, bytes: usize) -> StorageRequest {
        StorageRequest::PutMessage {
            queue: queue.into(),
            data: Bytes::from(vec![7u8; bytes]),
            ttl: None,
        }
    }

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn queue_roundtrip_through_cluster() {
        let mut c = cluster();
        let (_, r) = c.submit(at(0), 0, &StorageRequest::CreateQueue { queue: "q".into() });
        r.unwrap();
        let (t1, r) = c.submit(at(10), 0, &put_msg("q", 100));
        r.unwrap();
        assert!(t1 > at(10));
        let (_, r) = c.submit(
            t1,
            0,
            &StorageRequest::GetMessage {
                queue: "q".into(),
                visibility_timeout: Duration::from_secs(30),
            },
        );
        match r.unwrap() {
            StorageOk::Message(Some(m)) => assert_eq!(m.data.len(), 100),
            other => panic!("expected message, got {other:?}"),
        }
        assert_eq!(c.metrics().total_completed(), 3);
    }

    #[test]
    fn peek_put_get_cost_ordering() {
        // The paper's core queue finding: Peek < Put < Get.
        let mut c = cluster();
        c.submit(at(0), 0, &StorageRequest::CreateQueue { queue: "q".into() })
            .1
            .unwrap();
        // Preload two messages so both peek and get find one.
        c.submit(at(100), 0, &put_msg("q", 1024)).1.unwrap();
        let (t_put_end, _) = c.submit(at(200), 0, &put_msg("q", 1024));
        let put_cost = t_put_end - at(200);

        let (t_peek_end, r) = c.submit(
            at(300),
            0,
            &StorageRequest::PeekMessage { queue: "q".into() },
        );
        assert!(matches!(r.unwrap(), StorageOk::Peeked(Some(_))));
        let peek_cost = t_peek_end - at(300);

        let (t_get_end, r) = c.submit(
            at(400),
            0,
            &StorageRequest::GetMessage {
                queue: "q".into(),
                visibility_timeout: Duration::from_secs(30),
            },
        );
        assert!(matches!(r.unwrap(), StorageOk::Message(Some(_))));
        let get_cost = t_get_end - at(400);

        assert!(
            peek_cost < put_cost && put_cost < get_cost,
            "expected peek {peek_cost:?} < put {put_cost:?} < get {get_cost:?}"
        );
    }

    #[test]
    fn queue_throttles_at_500_per_second() {
        let mut c = cluster();
        c.submit(at(0), 0, &StorageRequest::CreateQueue { queue: "q".into() })
            .1
            .unwrap();
        // Slam far more than burst + rate ops into one virtual instant.
        let mut throttled = 0;
        for i in 0..200 {
            let (_, r) = c.submit(at(1), i, &put_msg("q", 16));
            if matches!(r, Err(StorageError::ServerBusy { .. })) {
                throttled += 1;
            }
        }
        assert!(throttled > 0, "500 msg/s target must engage");
        assert_eq!(c.metrics().total_throttled(), throttled);
        // After a second of virtual idle time the bucket refills.
        let (_, r) = c.submit(at(1_500), 0, &put_msg("q", 16));
        r.unwrap();
    }

    #[test]
    fn throttle_retry_hint_is_a_floor_not_a_cap() {
        // A tiny refill rate makes the bucket's computed wait exceed the 1 s
        // hint: the client must be told the real deficit.
        let mut c = Cluster::new(ClusterParams {
            queue_rate: 0.5,
            throttle_burst: 1.0,
            ..ClusterParams::default()
        });
        c.submit(at(0), 0, &StorageRequest::CreateQueue { queue: "q".into() })
            .1
            .unwrap();
        c.submit(at(1), 0, &put_msg("q", 16)).1.unwrap();
        let (_, r) = c.submit(at(1), 1, &put_msg("q", 16));
        match r {
            Err(StorageError::ServerBusy { retry_after }) => {
                assert!(
                    retry_after > Duration::from_secs(1),
                    "computed wait {retry_after:?} must exceed the configured floor"
                );
            }
            other => panic!("expected ServerBusy, got {other:?}"),
        }
        // A mild deficit is still clamped up to the configured floor.
        let mut c = Cluster::new(ClusterParams {
            throttle_burst: 1.0,
            ..ClusterParams::default()
        });
        c.submit(at(0), 0, &StorageRequest::CreateQueue { queue: "q".into() })
            .1
            .unwrap();
        c.submit(at(1), 0, &put_msg("q", 16)).1.unwrap();
        let (_, r) = c.submit(at(1), 1, &put_msg("q", 16));
        match r {
            Err(StorageError::ServerBusy { retry_after }) => {
                assert_eq!(retry_after, c.params().throttle_retry_hint);
            }
            other => panic!("expected ServerBusy, got {other:?}"),
        }
    }

    #[test]
    fn interner_reuses_partition_slots() {
        let mut c = cluster();
        c.submit(at(0), 0, &StorageRequest::CreateQueue { queue: "q".into() })
            .1
            .unwrap();
        for i in 0..10 {
            c.submit(at(10 + i), 0, &put_msg("q", 16)).1.unwrap();
        }
        // One slot for the control partition, one for queue "q" — repeated
        // operations reuse the interned slot instead of re-keying maps.
        assert_eq!(c.slots.len(), 2);
        assert_eq!(c.slots[1].key, PartitionKey::Queue { queue: "q".into() });
        assert!(c.slots[1].bucket.is_some());
        assert!(c.slots[1].write_pipe.is_none());
    }

    #[test]
    fn separate_queues_do_not_share_throttle() {
        let mut c = cluster();
        for q in ["a", "b"] {
            c.submit(at(0), 0, &StorageRequest::CreateQueue { queue: q.into() })
                .1
                .unwrap();
        }
        // Exhaust queue a's bucket.
        let mut a_throttled = false;
        for i in 0..200 {
            let (_, r) = c.submit(at(1), i, &put_msg("a", 16));
            a_throttled |= matches!(r, Err(StorageError::ServerBusy { .. }));
        }
        assert!(a_throttled);
        // Queue b is unaffected.
        let (_, r) = c.submit(at(1), 0, &put_msg("b", 16));
        r.unwrap();
    }

    #[test]
    fn table_partition_throttles_independently() {
        use azsim_storage::{Entity, PropValue};
        let mut c = Cluster::new(ClusterParams {
            // Make the account bucket irrelevant for this test.
            account_tx_rate: 1e9,
            ..ClusterParams::default()
        });
        c.submit(at(0), 0, &StorageRequest::CreateTable { table: "t".into() })
            .1
            .unwrap();
        let insert = |pk: &str, rk: usize| StorageRequest::InsertEntity {
            table: "t".into(),
            entity: Entity::new(pk, rk.to_string()).with("v", PropValue::I64(1)),
        };
        let mut hot_throttled = 0;
        for i in 0..200 {
            let (_, r) = c.submit(at(1), i, &insert("hot", i));
            if matches!(r, Err(StorageError::ServerBusy { .. })) {
                hot_throttled += 1;
            }
        }
        assert!(
            hot_throttled > 0,
            "500 entities/s per partition must engage"
        );
        // A different partition of the same table is fine.
        let (_, r) = c.submit(at(1), 0, &insert("cold", 0));
        r.unwrap();
    }

    #[test]
    fn block_upload_slower_than_page_upload() {
        // Figure 4's asymmetry: page-blob writes are cheap, block staging is
        // expensive.
        let mut c = cluster();
        c.submit(
            at(0),
            0,
            &StorageRequest::CreateContainer {
                container: "c".into(),
            },
        )
        .1
        .unwrap();
        c.submit(
            at(0),
            0,
            &StorageRequest::CreatePageBlob {
                container: "c".into(),
                blob: "p".into(),
                size: 4 * 1024 * 1024,
            },
        )
        .1
        .unwrap();
        let mb = Bytes::from(vec![1u8; 1024 * 1024]);
        let (t_end, r) = c.submit(
            at(1_000),
            0,
            &StorageRequest::PutPage {
                container: "c".into(),
                blob: "p".into(),
                offset: 0,
                data: mb.clone(),
            },
        );
        r.unwrap();
        let page_cost = t_end - at(1_000);
        let (t_end, r) = c.submit(
            at(2_000),
            0,
            &StorageRequest::PutBlock {
                container: "c".into(),
                blob: "b".into(),
                block_id: "0".into(),
                data: mb,
            },
        );
        r.unwrap();
        let block_cost = t_end - at(2_000);
        assert!(
            block_cost > page_cost + Duration::from_millis(20),
            "block {block_cost:?} must be well above page {page_cost:?}"
        );
    }

    #[test]
    fn get16k_quirk_is_togglable() {
        let run = |quirk: bool| {
            let mut c = Cluster::new(ClusterParams {
                quirk_get16k: quirk,
                ..ClusterParams::default()
            });
            c.submit(at(0), 0, &StorageRequest::CreateQueue { queue: "q".into() })
                .1
                .unwrap();
            c.submit(at(10), 0, &put_msg("q", 16 * 1024)).1.unwrap();
            let (t_end, r) = c.submit(
                at(2_000),
                0,
                &StorageRequest::GetMessage {
                    queue: "q".into(),
                    visibility_timeout: Duration::from_secs(30),
                },
            );
            assert!(matches!(r.unwrap(), StorageOk::Message(Some(_))));
            t_end - at(2_000)
        };
        let with_quirk = run(true);
        let without = run(false);
        assert!(
            with_quirk > without + Duration::from_millis(10),
            "quirk on {with_quirk:?} must exceed off {without:?}"
        );
    }

    #[test]
    fn quirk_spares_other_sizes() {
        let cost_for = |payload: usize| {
            let mut c = cluster();
            c.submit(at(0), 0, &StorageRequest::CreateQueue { queue: "q".into() })
                .1
                .unwrap();
            c.submit(at(10), 0, &put_msg("q", payload)).1.unwrap();
            let (t_end, _) = c.submit(
                at(2_000),
                0,
                &StorageRequest::GetMessage {
                    queue: "q".into(),
                    visibility_timeout: Duration::from_secs(30),
                },
            );
            t_end - at(2_000)
        };
        let c4 = cost_for(4 * 1024);
        let c16 = cost_for(16 * 1024);
        let c48 = cost_for(48 * 1024);
        // The anomaly: 16 KB is slower than both smaller AND larger sizes.
        assert!(c16 > c4, "16K {c16:?} must exceed 4K {c4:?}");
        assert!(c16 > c48, "16K {c16:?} must exceed 48K {c48:?}");
    }

    #[test]
    fn errors_do_not_pay_replication() {
        let mut c = cluster();
        // Miss: queue exists but is empty — still a fast primary read.
        c.submit(at(0), 0, &StorageRequest::CreateQueue { queue: "q".into() })
            .1
            .unwrap();
        let (t_end, r) = c.submit(
            at(100),
            0,
            &StorageRequest::GetMessage {
                queue: "q".into(),
                visibility_timeout: Duration::from_secs(1),
            },
        );
        assert!(matches!(r.unwrap(), StorageOk::Message(None)));
        // Semantic error: unknown queue.
        let (t_err, r) = c.submit(
            at(200),
            0,
            &StorageRequest::PutMessage {
                queue: "nope".into(),
                data: Bytes::new(),
                ttl: None,
            },
        );
        assert!(matches!(r, Err(StorageError::QueueNotFound(_))));
        assert!(t_end > at(100) && t_err > at(200));
        assert_eq!(c.metrics().counter(OpClass::QueuePut).unwrap().failed, 1);
    }

    #[test]
    fn nic_override_changes_transfer_time() {
        let mut slow = cluster();
        slow.set_actor_nic(0, 1_000_000.0); // 1 MB/s
        slow.submit(at(0), 0, &StorageRequest::CreateQueue { queue: "q".into() })
            .1
            .unwrap();
        let (t_slow, _) = slow.submit(at(100), 0, &put_msg("q", 48 * 1024));

        let mut fast = cluster();
        fast.set_actor_nic(0, 1e9); // 1 GB/s
        fast.submit(at(0), 0, &StorageRequest::CreateQueue { queue: "q".into() })
            .1
            .unwrap();
        let (t_fast, _) = fast.submit(at(100), 0, &put_msg("q", 48 * 1024));
        assert!(t_slow - at(100) > t_fast - at(100));
    }

    #[test]
    fn tracing_records_operations_when_enabled() {
        let mut c = cluster();
        assert!(c.tracer().is_none(), "tracing is off by default");
        c.enable_tracing(100);
        c.submit(at(0), 3, &StorageRequest::CreateQueue { queue: "q".into() })
            .1
            .unwrap();
        c.submit(at(10), 3, &put_msg("q", 256)).1.unwrap();
        c.submit(
            at(20),
            4,
            &StorageRequest::PutMessage {
                queue: "missing".into(),
                data: Bytes::new(),
                ttl: None,
            },
        )
        .1
        .unwrap_err();
        let tr = c.tracer().unwrap();
        assert_eq!(tr.records().len(), 3);
        let r = &tr.records()[1];
        assert_eq!(r.actor, 3);
        assert_eq!(r.class, OpClass::QueuePut);
        assert_eq!(r.outcome, crate::trace::TraceOutcome::Ok);
        assert_eq!(r.bytes_up, 256);
        assert!(r.latency() > Duration::ZERO);
        assert_eq!(tr.records()[2].outcome, crate::trace::TraceOutcome::Failed);
        let csv = tr.to_csv();
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn tracing_marks_throttled_ops() {
        let mut c = Cluster::new(ClusterParams {
            throttle_burst: 1.0,
            queue_rate: 1.0,
            ..ClusterParams::default()
        });
        c.enable_tracing(100);
        c.submit(at(0), 0, &StorageRequest::CreateQueue { queue: "q".into() })
            .1
            .unwrap();
        c.submit(at(1), 0, &put_msg("q", 16)).1.unwrap();
        let (_, r) = c.submit(at(1), 1, &put_msg("q", 16));
        assert!(matches!(r, Err(StorageError::ServerBusy { .. })));
        let outcomes: Vec<_> = c
            .tracer()
            .unwrap()
            .records()
            .iter()
            .map(|r| r.outcome)
            .collect();
        assert!(outcomes.contains(&crate::trace::TraceOutcome::Throttled));
    }

    #[test]
    fn timeline_sampling_never_changes_completion_times() {
        // The same borderline-throttled workload, with and without the
        // timeline: every virtual completion time must be bit-identical,
        // because sampling reads only side-effect-free accessors.
        let run = |resolution: Option<Duration>| {
            let mut c = Cluster::new(ClusterParams {
                throttle_burst: 3.0,
                queue_rate: 40.0,
                timeline_resolution: resolution,
                ..ClusterParams::default()
            });
            c.submit(at(0), 0, &StorageRequest::CreateQueue { queue: "q".into() })
                .1
                .unwrap();
            let mut ends = Vec::new();
            for i in 0..300u64 {
                let (done, r) = c.submit(at(1 + i * 7), (i % 5) as usize, &put_msg("q", 900));
                ends.push((done, r.is_ok()));
            }
            ends
        };
        let plain = run(None);
        let sampled = run(Some(Duration::from_millis(50)));
        assert_eq!(plain, sampled);
    }

    #[test]
    fn timeline_collects_gauges_and_usage() {
        let mut c = Cluster::new(ClusterParams {
            throttle_burst: 2.0,
            queue_rate: 10.0,
            timeline_resolution: Some(Duration::from_millis(20)),
            ..ClusterParams::default()
        });
        assert!(c.timeline().is_some());
        c.submit(at(0), 0, &StorageRequest::CreateQueue { queue: "q".into() })
            .1
            .unwrap();
        let mut end = SimTime::ZERO;
        for i in 0..100u64 {
            let (done, _) = c.submit(at(1 + i), 0, &put_msg("q", 64));
            end = end.max(done);
        }
        let tl = c.timeline().unwrap();
        let fill = tl
            .recorder()
            .gauges()
            .iter()
            .find(|g| g.name == "bucket_fill:queue:q")
            .expect("per-queue fill gauge registered");
        assert!(fill.series.sample_count() >= 100);
        // Slamming 100 ops into 100 ms against a 10/s bucket saturates it.
        let usage = c.resource_usage(end);
        let bucket = usage
            .iter()
            .find(|u| u.resource == "bucket:queue:q")
            .unwrap();
        assert!(bucket.saturation > 0.8, "saturation {}", bucket.saturation);
        assert!(bucket.throttled > 0);
        // The FIFO barely worked in comparison.
        let fifo = usage.iter().find(|u| u.resource == "fifo:queue:q").unwrap();
        assert!(fifo.saturation < bucket.saturation);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        /// A sequential client's completions are strictly increasing, every
        /// op costs at least the front-end round trip, and the metrics'
        /// byte counters exactly equal the payloads moved.
        #[test]
        fn prop_sequential_latency_and_byte_accounting(
            sizes in proptest::collection::vec(1usize..48_000, 1..40)
        ) {
            let mut c = cluster();
            c.submit(at(0), 0, &StorageRequest::CreateQueue { queue: "q".into() })
                .1
                .unwrap();
            let mut t = SimTime::from_millis(10);
            let mut last_done = t;
            let mut bytes = 0u64;
            for s in &sizes {
                let (done, r) = c.submit(t, 0, &put_msg("q", *s));
                match r {
                    Ok(_) => {
                        bytes += *s as u64;
                        proptest::prop_assert!(done > last_done);
                        proptest::prop_assert!(
                            done.saturating_since(t) >= c.params().frontend_rtt
                        );
                        last_done = done;
                        t = done;
                    }
                    Err(StorageError::ServerBusy { .. }) => {
                        // Back off like the SDK would.
                        t = done + Duration::from_secs(1);
                    }
                    Err(e) => return Err(proptest::test_runner::TestCaseError::fail(
                        format!("unexpected error {e}"))),
                }
            }
            let put = c.metrics().counter(OpClass::QueuePut).unwrap();
            proptest::prop_assert_eq!(put.bytes_up, bytes);
            proptest::prop_assert_eq!(put.bytes_down, 0);
        }

        /// A saturated per-blob write pipe never admits more than its
        /// bandwidth allows over the busy window.
        #[test]
        fn prop_blob_pipe_respects_bandwidth(
            n_chunks in 4usize..24,
        ) {
            let mut c = cluster();
            c.submit(at(0), 0, &StorageRequest::CreateContainer { container: "c".into() })
                .1
                .unwrap();
            c.submit(
                at(0),
                0,
                &StorageRequest::CreatePageBlob {
                    container: "c".into(),
                    blob: "p".into(),
                    size: (n_chunks as u64) << 20,
                },
            )
            .1
            .unwrap();
            // Saturate: many actors write 1 MB pages at the same instant.
            let mut last_end = SimTime::ZERO;
            for i in 0..n_chunks {
                let (done, r) = c.submit(
                    at(100),
                    i,
                    &StorageRequest::PutPage {
                        container: "c".into(),
                        blob: "p".into(),
                        offset: (i as u64) << 20,
                        data: Bytes::from(vec![0u8; 1 << 20]),
                    },
                );
                r.unwrap();
                last_end = last_end.max(done);
            }
            let window = last_end.saturating_since(at(100)).as_secs_f64();
            let mb_s = n_chunks as f64 / window;
            // The documented 60 MB/s single-blob target binds (allow the
            // first in-flight chunk as slack).
            proptest::prop_assert!(
                mb_s <= 62.0,
                "blob pipe over-admitted: {mb_s:.1} MB/s over {window:.3}s"
            );
        }
    }

    #[test]
    fn account_tx_bucket_spans_services() {
        let mut c = Cluster::new(ClusterParams {
            account_tx_rate: 100.0,
            throttle_burst: 5.0,
            queue_rate: 1e9,
            partition_rate: 1e9,
            ..ClusterParams::default()
        });
        c.submit(at(0), 0, &StorageRequest::CreateQueue { queue: "q".into() })
            .1
            .unwrap();
        let mut throttled = 0;
        for i in 0..20 {
            // Spread over many queues: only the ACCOUNT bucket can throttle.
            let q = format!("q{}", i % 3);
            c.submit(at(0), 0, &StorageRequest::CreateQueue { queue: q.clone() })
                .1
                .ok();
            let (_, r) = c.submit(at(1), i, &put_msg(&q, 16));
            if matches!(r, Err(StorageError::ServerBusy { .. })) {
                throttled += 1;
            }
        }
        assert!(
            throttled > 0,
            "account-level 5000 tx/s analogue must engage"
        );
    }

    // ---- backend profiles ----

    use crate::backend::BackendProfile;

    #[test]
    fn s3_backend_throttles_at_account_scope_with_slowdown_curve() {
        // Shrink the account rate so the cap engages quickly; shape and
        // scope are what this test pins.
        let mut profile = BackendProfile::s3();
        profile.account_rate_override = Some(50.0);
        let mut c = Cluster::new(ClusterParams::for_backend(profile));
        for q in ["a", "b"] {
            c.submit(at(0), 0, &StorageRequest::CreateQueue { queue: q.into() })
                .1
                .unwrap();
        }
        let mut hints = Vec::new();
        for i in 0..120 {
            match c.submit(at(1), i, &put_msg("a", 16)).1 {
                Ok(_) => {}
                Err(StorageError::SlowDown { retry_after }) => hints.push(retry_after),
                Err(other) => panic!("s3 throttle must be SlowDown, got {other}"),
            }
        }
        assert!(hints.len() >= 3, "the shrunk account cap must engage");
        // Consecutive rejections escalate along the declared doubling
        // curve: 100 ms, 200 ms, 400 ms, … capped at 5 s.
        assert_eq!(hints[0], Duration::from_millis(100));
        assert_eq!(hints[1], Duration::from_millis(200));
        assert_eq!(hints[2], Duration::from_millis(400));
        assert!(hints.iter().all(|h| *h <= Duration::from_secs(5)));
        // No per-partition caps: a *fresh* queue is rejected just the same,
        // because the scope is the account (WAS would admit it).
        let (_, r) = c.submit(at(1), 0, &put_msg("b", 16));
        assert!(matches!(r, Err(StorageError::SlowDown { .. })));
        // An admitted request resets the curve back to its base.
        c.submit(at(10_000), 0, &put_msg("a", 16)).1.unwrap();
        let mut c2_hint = None;
        for i in 0..120 {
            if let Err(StorageError::SlowDown { retry_after }) =
                c.submit(at(10_001), i, &put_msg("a", 16)).1
            {
                c2_hint = Some(retry_after);
                break;
            }
        }
        assert_eq!(c2_hint, Some(Duration::from_millis(100)));
    }

    #[test]
    fn gcs_object_update_limit_is_per_object_with_exponential_pushback() {
        use azsim_storage::{Entity, EtagCondition, PropValue};
        let mut c = Cluster::new(ClusterParams::for_backend(BackendProfile::gcs()));
        c.submit(at(0), 0, &StorageRequest::CreateTable { table: "t".into() })
            .1
            .unwrap();
        let entity = |rk: &str, v: i64| Entity::new("p", rk).with("v", PropValue::I64(v));
        for rk in ["r1", "r2"] {
            c.submit(
                at(100),
                0,
                &StorageRequest::InsertEntity {
                    table: "t".into(),
                    entity: entity(rk, 0),
                },
            )
            .1
            .unwrap();
        }
        let update = |rk: &str, v: i64| StorageRequest::UpdateEntity {
            table: "t".into(),
            entity: entity(rk, v),
            condition: EtagCondition::Any,
        };
        // One update per second per object: the first is admitted, rapid
        // consecutive retries push back exponentially (400, 800, 1600 ms).
        c.submit(at(5_000), 0, &update("r1", 1)).1.unwrap();
        let mut hints = Vec::new();
        for v in 2..5 {
            match c.submit(at(5_000), 0, &update("r1", v)).1 {
                Err(StorageError::ServerBusy { retry_after }) => hints.push(retry_after),
                other => panic!("expected per-object pushback, got {other:?}"),
            }
        }
        assert_eq!(
            hints,
            vec![
                Duration::from_millis(400),
                Duration::from_millis(800),
                Duration::from_millis(1_600),
            ]
        );
        // A different row of the *same* partition is a different object and
        // is untouched by r1's pushback.
        c.submit(at(5_000), 0, &update("r2", 1)).1.unwrap();
        // After the object's bucket refills, r1 admits again and the
        // pushback counter resets.
        c.submit(at(8_000), 0, &update("r1", 9)).1.unwrap();
        match c.submit(at(8_000), 0, &update("r1", 10)).1 {
            Err(StorageError::ServerBusy { retry_after }) => {
                assert_eq!(retry_after, Duration::from_millis(400));
            }
            other => panic!("expected pushback restart, got {other:?}"),
        }
    }

    #[test]
    fn file_backend_never_throttles() {
        let mut c = Cluster::new(ClusterParams::for_backend(BackendProfile::file()));
        c.submit(at(0), 0, &StorageRequest::CreateQueue { queue: "q".into() })
            .1
            .unwrap();
        for i in 0..600 {
            c.submit(at(1), i, &put_msg("q", 16)).1.unwrap();
        }
        assert_eq!(c.metrics().total_throttled(), 0);
        assert_eq!(c.metrics().total_completed(), 601);
    }

    #[test]
    fn s3_listing_hides_fresh_blobs_for_at_most_the_declared_window() {
        let window = BackendProfile::s3().list_visibility_window.unwrap();
        let mut c = Cluster::new(ClusterParams::for_backend(BackendProfile::s3()));
        c.submit(
            at(0),
            0,
            &StorageRequest::CreateContainer {
                container: "c".into(),
            },
        )
        .1
        .unwrap();
        let mut acked = Vec::new();
        for i in 0..16 {
            let (done, r) = c.submit(
                at(100),
                0,
                &StorageRequest::UploadBlockBlob {
                    container: "c".into(),
                    blob: format!("b{i}"),
                    data: Bytes::from_static(b"x"),
                },
            );
            r.unwrap();
            acked.push(done);
        }
        let list = |c: &mut Cluster, t: SimTime| -> Vec<String> {
            match c
                .submit(
                    t,
                    1,
                    &StorageRequest::ListBlobs {
                        container: "c".into(),
                    },
                )
                .1
                .unwrap()
            {
                StorageOk::Names(names) => names,
                other => panic!("expected names, got {other:?}"),
            }
        };
        // Immediately after the writes some blobs lag out of the listing —
        // the declared deviation from WAS must be observable.
        let fresh = list(&mut c, *acked.iter().max().unwrap());
        assert!(
            fresh.len() < 16,
            "with a 2 s window, 16 fresh blobs must not all list instantly"
        );
        // One declared window later every blob lists.
        let horizon = *acked.iter().max().unwrap() + window + Duration::from_millis(1);
        assert_eq!(list(&mut c, horizon).len(), 16);
        // WAS lists everything immediately (strong list-after-write).
        let mut was = Cluster::with_defaults();
        was.submit(
            at(0),
            0,
            &StorageRequest::CreateContainer {
                container: "c".into(),
            },
        )
        .1
        .unwrap();
        let mut done_max = SimTime::ZERO;
        for i in 0..16 {
            let (done, r) = was.submit(
                at(100),
                0,
                &StorageRequest::UploadBlockBlob {
                    container: "c".into(),
                    blob: format!("b{i}"),
                    data: Bytes::from_static(b"x"),
                },
            );
            r.unwrap();
            done_max = done_max.max(done);
        }
        assert_eq!(list(&mut was, done_max).len(), 16);
    }

    #[test]
    fn deleted_blob_leaves_the_visibility_overlay() {
        let mut c = Cluster::new(ClusterParams::for_backend(BackendProfile::s3()));
        c.submit(
            at(0),
            0,
            &StorageRequest::CreateContainer {
                container: "c".into(),
            },
        )
        .1
        .unwrap();
        c.submit(
            at(100),
            0,
            &StorageRequest::UploadBlockBlob {
                container: "c".into(),
                blob: "b".into(),
                data: Bytes::from_static(b"x"),
            },
        )
        .1
        .unwrap();
        c.submit(
            at(200),
            0,
            &StorageRequest::DeleteBlob {
                container: "c".into(),
                blob: "b".into(),
            },
        )
        .1
        .unwrap();
        assert!(c
            .list_visibility
            .as_ref()
            .expect("s3 declares a window")
            .is_empty());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
        /// The S3-style backend's declared eventual list-after-write,
        /// property-checked over random write/probe schedules: a committed
        /// blob (1) lists no later than its declared window after the ack,
        /// (2) is never lost, and (3) never flickers back out of listings
        /// once observed (monotonic per key).
        #[test]
        fn prop_s3_list_after_write_is_bounded_lossless_monotonic(
            n_blobs in 1usize..12,
            upload_ms in proptest::collection::vec(0u64..3_000, 12),
            probe_ms in proptest::collection::vec(0u64..8_000, 1..24),
        ) {
            let window = BackendProfile::s3().list_visibility_window.unwrap();
            let mut c = Cluster::new(ClusterParams::for_backend(BackendProfile::s3()));
            c.submit(at(0), 0, &StorageRequest::CreateContainer { container: "c".into() })
                .1
                .unwrap();

            // Interleave uploads and list probes in virtual-time order.
            enum Act { Upload(usize), Probe }
            let mut sched: Vec<(u64, Act)> = (0..n_blobs)
                .map(|i| (10 + upload_ms[i], Act::Upload(i)))
                .chain(probe_ms.iter().map(|&ms| (10 + ms, Act::Probe)))
                .collect();
            sched.sort_by_key(|(ms, act)| (*ms, matches!(act, Act::Probe)));

            let mut acked: Vec<(String, SimTime)> = Vec::new();
            let mut seen: std::collections::HashSet<String> = Default::default();
            for (ms, act) in sched {
                match act {
                    Act::Upload(i) => {
                        let name = format!("b{i}");
                        let (done, r) = c.submit(at(ms), 0, &StorageRequest::UploadBlockBlob {
                            container: "c".into(),
                            blob: name.clone(),
                            data: Bytes::from_static(b"x"),
                        });
                        r.unwrap();
                        acked.push((name, done));
                    }
                    Act::Probe => {
                        let names = match c
                            .submit(at(ms), 1, &StorageRequest::ListBlobs { container: "c".into() })
                            .1
                            .unwrap()
                        {
                            StorageOk::Names(names) => names,
                            other => panic!("expected names, got {other:?}"),
                        };
                        for s in &seen {
                            proptest::prop_assert!(
                                names.contains(s),
                                "blob {s} flickered out of the listing"
                            );
                        }
                        for (name, done) in &acked {
                            if at(ms).saturating_since(*done) > window {
                                proptest::prop_assert!(
                                    names.contains(name),
                                    "blob {name} still unlisted past the declared window"
                                );
                            }
                        }
                        seen.extend(names);
                    }
                }
            }

            // Never lost: one declared window past the last ack, every
            // committed blob lists.
            let horizon = acked
                .iter()
                .map(|(_, done)| *done)
                .max()
                .unwrap_or(SimTime::ZERO)
                + window
                + Duration::from_millis(1);
            let names = match c
                .submit(horizon, 1, &StorageRequest::ListBlobs { container: "c".into() })
                .1
                .unwrap()
            {
                StorageOk::Names(names) => names,
                other => panic!("expected names, got {other:?}"),
            };
            for (name, _) in &acked {
                proptest::prop_assert!(names.contains(name), "blob {name} was lost");
            }
        }
    }
}
