//! Deterministic, seeded fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] describes *when and where* the cluster misbehaves:
//!
//! * **scheduled** events — partition-server crashes with a failover
//!   window ([`ServerCrash`]), per-partition transient unavailability
//!   ([`PartitionBlackout`]), and cluster-wide `ServerBusy` storms
//!   ([`BusyStorm`]) — are pure time windows, reproduced identically on
//!   every run;
//! * **probabilistic** events — request drops, lost acks and replica-sync
//!   stalls — are keyed off a counter-hash stream derived from the plan's
//!   seed: the fate of the *n*-th request is a pure function of
//!   `(seed, n)`, so probabilistic faults replay identically under any
//!   schedule (editing a crash window does not reshuffle the drops).
//!
//! The default plan is **inert**: every list empty, every probability
//! zero. An inert plan is never consulted beyond one boolean check and
//! draws no randomness, so enabling the subsystem does not perturb
//! baseline (paper-reproduction) runs in any way.
//!
//! # Outcome ambiguity
//!
//! Faults surface to clients in two fundamentally different shapes:
//!
//! * **clean rejections** — `ServerBusy` (storms) and `ServerFault`
//!   (crash/blackout windows): the server answered, the operation did
//!   *not* execute, retrying is always safe;
//! * **ambiguous losses** — `Timeout`: the client's wait expired and it
//!   cannot know whether the operation executed. A *request* loss
//!   ([`FaultDecision::Drop`], probability [`FaultPlan::timeout_prob`])
//!   never executed; an *ack* loss ([`FaultDecision::AckLoss`],
//!   probability [`FaultPlan::ack_loss_prob`]) executed server-side and
//!   only the response vanished — the classic duplicate-on-retry case.
//!   A crash window can also cut the ack of a replicated write that was
//!   in flight when the server died ([`FaultInjector::ack_cut_by_crash`]).
//!   Both losses look identical to the client; only the verification
//!   layer (`crate::verify`) sees the ground truth.

use azsim_core::rng::derive_seed;
use azsim_core::SimTime;
use azsim_storage::{OpClass, PartitionKey};
use std::time::Duration;

/// RNG stream id for fault decisions (distinct from the cluster's other
/// streams, which derive from `ClusterParams::seed`).
const FAULT_STREAM: u64 = 0xFA17;

/// Per-request draw tags: each probabilistic fault kind owns a child
/// stream of `FAULT_STREAM` so its draws are independent of the others.
const DROP_DRAW: u64 = 1;
const ACK_DRAW: u64 = 2;
const STALL_DRAW: u64 = 3;

/// One partition-server crash: every partition placed on `server` is
/// unavailable for `failover` after `at` (WAS reassigns its partitions to
/// other servers; the window models reload + replay).
#[derive(Clone, Debug, PartialEq)]
pub struct ServerCrash {
    /// Index of the crashed server (`PartitionKey::server_index`).
    pub server: usize,
    /// Crash instant.
    pub at: SimTime,
    /// How long the partitions stay unavailable.
    pub failover: Duration,
}

/// One partition's transient unavailability window (e.g. a partition
/// being moved, or its log being sealed).
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionBlackout {
    /// The affected partition.
    pub partition: PartitionKey,
    /// Window start.
    pub at: SimTime,
    /// Window length.
    pub duration: Duration,
}

/// A window during which every data-plane request is rejected with
/// `ServerBusy` regardless of the token buckets — an injected throttle
/// storm, as seen during cluster-wide load spikes.
#[derive(Clone, Debug, PartialEq)]
pub struct BusyStorm {
    /// Window start.
    pub at: SimTime,
    /// Window length.
    pub duration: Duration,
    /// Retry hint returned with the injected rejections.
    pub retry_after: Duration,
}

/// A complete fault schedule for one run. Construct with struct-update
/// syntax over [`FaultPlan::default`], which is inert.
///
/// # Window convention
///
/// Every scheduled window is **half-open**: a window starting at `at`
/// with length `d` affects requests arriving in `[at, at + d)` and a
/// request arriving at exactly `at + d` is served normally. The
/// `retry_after` hint returned from inside a window is the time remaining
/// until `at + d`, so a client that sleeps exactly the hinted duration
/// lands on the first served instant — hints and the error window agree
/// at the boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault draw stream (independent of the workload seed so
    /// fault sequences can be varied while the workload is held fixed).
    pub seed: u64,
    /// Scheduled server crashes.
    pub crashes: Vec<ServerCrash>,
    /// Whether a crash that begins while a replicated write is still
    /// syncing cuts the write's ack (the operation executed but the
    /// client observes a timeout — an *ambiguous* outcome). Off by
    /// default: plain crash plans keep the unambiguous `ServerFault`
    /// contract, under which blind retries are always safe.
    pub crash_cuts_acks: bool,
    /// Scheduled per-partition blackouts.
    pub blackouts: Vec<PartitionBlackout>,
    /// Scheduled throttle storms.
    pub busy_storms: Vec<BusyStorm>,
    /// Probability that a data-plane request is dropped (client observes a
    /// timeout; the operation never executes).
    pub timeout_prob: f64,
    /// The client-side wait modeled for a dropped request or lost ack.
    pub timeout: Duration,
    /// Probability that a data-plane request executes server-side but its
    /// response is lost (client observes a timeout; the operation *did*
    /// execute — retrying may duplicate it).
    pub ack_loss_prob: f64,
    /// Probability that a replicated write's sync stalls.
    pub replica_stall_prob: f64,
    /// Extra latency added by a replica-sync stall.
    pub replica_stall: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            crashes: Vec::new(),
            crash_cuts_acks: false,
            blackouts: Vec::new(),
            busy_storms: Vec::new(),
            timeout_prob: 0.0,
            timeout: Duration::from_secs(30),
            ack_loss_prob: 0.0,
            replica_stall_prob: 0.0,
            replica_stall: Duration::from_millis(200),
        }
    }
}

impl FaultPlan {
    /// Whether this plan can never inject anything.
    pub fn is_inert(&self) -> bool {
        self.crashes.is_empty()
            && self.blackouts.is_empty()
            && self.busy_storms.is_empty()
            && self.timeout_prob <= 0.0
            && self.ack_loss_prob <= 0.0
            && self.replica_stall_prob <= 0.0
    }

    /// Whether `now` falls inside any scheduled window (half-open, see the
    /// type-level docs). Used by the verification layer to decide which
    /// read-your-writes checks must hold unconditionally.
    pub fn in_any_window(&self, now: SimTime) -> bool {
        self.busy_storms
            .iter()
            .any(|s| in_window(now, s.at, s.duration))
            || self
                .crashes
                .iter()
                .any(|c| in_window(now, c.at, c.failover))
            || self
                .blackouts
                .iter()
                .any(|b| in_window(now, b.at, b.duration))
    }
}

/// What the injector decided for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDecision {
    /// Proceed normally.
    None,
    /// Reject with `ServerBusy { retry_after }` (storm).
    Busy {
        /// Retry hint to return.
        retry_after: Duration,
    },
    /// Reject with `ServerFault { retry_after }` (crash/blackout window);
    /// the hint is the time remaining in the window.
    Fault {
        /// Remaining unavailability.
        retry_after: Duration,
    },
    /// Drop the request; the client observes `Timeout { elapsed }` after
    /// its wait. The operation does not execute.
    Drop {
        /// The modeled client-side wait.
        elapsed: Duration,
    },
    /// Lose the *response*: the operation proceeds through the normal
    /// request path (throttles, state transition, replication) but the
    /// client observes `Timeout { elapsed }` — an ambiguous outcome.
    AckLoss {
        /// The modeled client-side wait.
        elapsed: Duration,
    },
}

/// Counters of injected events (all zero under an inert plan).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultMetrics {
    /// `ServerBusy` rejections injected by storms.
    pub injected_busy: u64,
    /// `ServerFault` rejections from crash windows.
    pub crash_faults: u64,
    /// `ServerFault` rejections from partition blackouts.
    pub blackout_faults: u64,
    /// Requests dropped before execution (client timeouts).
    pub dropped: u64,
    /// Responses lost after the request reached the server
    /// (`ack_loss_prob` draws; the operation may have executed).
    pub ack_losses: u64,
    /// Replicated-write acks cut by a crash that began while the write
    /// was in flight (the write executed; the client saw a timeout).
    pub crash_ambiguous: u64,
    /// Replica-sync stalls applied.
    pub replica_stalls: u64,
}

impl FaultMetrics {
    /// Total injected faults of all kinds.
    pub fn total(&self) -> u64 {
        self.injected_busy
            + self.crash_faults
            + self.blackout_faults
            + self.dropped
            + self.ack_losses
            + self.crash_ambiguous
            + self.replica_stalls
    }

    /// Client-ambiguous outcomes: timeouts where the client cannot know
    /// whether the operation executed (it did for ack losses and crash
    /// cuts, did not for drops).
    pub fn ambiguous(&self) -> u64 {
        self.dropped + self.ack_losses + self.crash_ambiguous
    }
}

/// Executes a [`FaultPlan`] against the request stream. Owned by the
/// cluster; consulted once per data-plane request.
///
/// Probabilistic decisions are *counter-keyed*: the injector numbers
/// data-plane requests as they arrive and derives each draw from
/// `(plan.seed, fault kind, request index)` with the SplitMix64 mixer.
/// The index advances even when a scheduled window pre-empts the request,
/// so adding or removing windows never shifts which later requests get
/// dropped — schedules and probabilistic faults compose independently.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    metrics: FaultMetrics,
    active: bool,
    /// Data-plane requests seen (the counter-hash draw key).
    requests: u64,
    /// Replicated writes seen by [`FaultInjector::replica_stall`].
    stall_draws: u64,
    /// Precomputed child seeds of the per-kind draw streams.
    drop_seed: u64,
    ack_seed: u64,
    stall_seed: u64,
}

/// Map a 64-bit hash to a uniform draw in `[0, 1)`.
fn unit(hash: u64) -> f64 {
    (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultInjector {
    /// Build from a plan.
    pub fn new(plan: FaultPlan) -> Self {
        let active = !plan.is_inert();
        let stream = derive_seed(plan.seed, FAULT_STREAM);
        FaultInjector {
            active,
            metrics: FaultMetrics::default(),
            requests: 0,
            stall_draws: 0,
            drop_seed: derive_seed(stream, DROP_DRAW),
            ack_seed: derive_seed(stream, ACK_DRAW),
            stall_seed: derive_seed(stream, STALL_DRAW),
            plan,
        }
    }

    /// An injector that never fires.
    pub fn inert() -> Self {
        Self::new(FaultPlan::default())
    }

    /// Whether any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counts of injected events so far.
    pub fn metrics(&self) -> &FaultMetrics {
        &self.metrics
    }

    /// Decide the fate of one request arriving at `now` for partition
    /// `pk` on server `server`. Control-plane operations (create/delete
    /// of namespaces) are never faulted so harness setup stays reliable.
    ///
    /// Decision order mirrors the request path: storm rejection happens
    /// at the front end (before placement), then crash/blackout at the
    /// partition server, then in-flight request/response losses, with
    /// replica stalls handled separately by
    /// [`FaultInjector::replica_stall`].
    pub fn decide(
        &mut self,
        now: SimTime,
        class: OpClass,
        pk: &PartitionKey,
        server: usize,
    ) -> FaultDecision {
        if !self.active || class.is_control() {
            return FaultDecision::None;
        }
        // Number every data-plane request, window-hit or not, so the
        // probabilistic draws below stay keyed to the request index no
        // matter how the schedule is edited.
        let n = self.requests;
        self.requests += 1;
        for storm in &self.plan.busy_storms {
            if in_window(now, storm.at, storm.duration) {
                self.metrics.injected_busy += 1;
                return FaultDecision::Busy {
                    retry_after: storm.retry_after,
                };
            }
        }
        for crash in &self.plan.crashes {
            if crash.server == server && in_window(now, crash.at, crash.failover) {
                self.metrics.crash_faults += 1;
                return FaultDecision::Fault {
                    retry_after: remaining(now, crash.at, crash.failover),
                };
            }
        }
        for blackout in &self.plan.blackouts {
            if blackout.partition == *pk && in_window(now, blackout.at, blackout.duration) {
                self.metrics.blackout_faults += 1;
                return FaultDecision::Fault {
                    retry_after: remaining(now, blackout.at, blackout.duration),
                };
            }
        }
        if self.plan.timeout_prob > 0.0
            && unit(derive_seed(self.drop_seed, n)) < self.plan.timeout_prob
        {
            self.metrics.dropped += 1;
            return FaultDecision::Drop {
                elapsed: self.plan.timeout,
            };
        }
        if self.plan.ack_loss_prob > 0.0
            && unit(derive_seed(self.ack_seed, n)) < self.plan.ack_loss_prob
        {
            self.metrics.ack_losses += 1;
            return FaultDecision::AckLoss {
                elapsed: self.plan.timeout,
            };
        }
        FaultDecision::None
    }

    /// Number of scheduled fault windows (storms, crashes, blackouts)
    /// containing `now`. Pure; used by the timeline's active-faults gauge.
    pub fn active_windows(&self, now: SimTime) -> usize {
        let p = &self.plan;
        p.busy_storms
            .iter()
            .filter(|s| in_window(now, s.at, s.duration))
            .count()
            + p.crashes
                .iter()
                .filter(|c| in_window(now, c.at, c.failover))
                .count()
            + p.blackouts
                .iter()
                .filter(|b| in_window(now, b.at, b.duration))
                .count()
    }

    /// Extra replica-sync latency for a replicated write, if a stall
    /// fires. Called only for operations that actually replicate; draws
    /// are keyed by the replicating-write index, independent of the drop
    /// and ack-loss streams.
    pub fn replica_stall(&mut self) -> Option<Duration> {
        if !self.active || self.plan.replica_stall_prob <= 0.0 {
            return None;
        }
        let n = self.stall_draws;
        self.stall_draws += 1;
        if unit(derive_seed(self.stall_seed, n)) < self.plan.replica_stall_prob {
            self.metrics.replica_stalls += 1;
            Some(self.plan.replica_stall)
        } else {
            None
        }
    }

    /// Mid-window crash semantics for in-flight replicated writes: if a
    /// crash of `server` *begins* while a replicated write admitted at
    /// `service_start` is still replicating (strictly after service start,
    /// at or before `replicated_at`), the primary applied the write but
    /// the ack never left the dying server. Returns the modeled client
    /// wait; the caller converts the response into an ambiguous timeout.
    pub fn ack_cut_by_crash(
        &mut self,
        server: usize,
        service_start: SimTime,
        replicated_at: SimTime,
    ) -> Option<Duration> {
        if !self.active || !self.plan.crash_cuts_acks || self.plan.crashes.is_empty() {
            return None;
        }
        let cut = self
            .plan
            .crashes
            .iter()
            .any(|c| c.server == server && c.at > service_start && c.at <= replicated_at);
        if cut {
            self.metrics.crash_ambiguous += 1;
            Some(self.plan.timeout)
        } else {
            None
        }
    }
}

/// Half-open window membership: `[start, start + len)`.
fn in_window(now: SimTime, start: SimTime, len: Duration) -> bool {
    now >= start && now < start + len
}

/// Time until the window's (exclusive) end — the first served instant.
fn remaining(now: SimTime, start: SimTime, len: Duration) -> Duration {
    (start + len).saturating_since(now)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn queue_pk() -> PartitionKey {
        PartitionKey::Queue { queue: "q".into() }
    }

    #[test]
    fn default_plan_is_inert_and_silent() {
        let mut inj = FaultInjector::inert();
        assert!(!inj.is_active());
        for ms in 0..100 {
            assert_eq!(
                inj.decide(at(ms), OpClass::QueuePut, &queue_pk(), 3),
                FaultDecision::None
            );
        }
        assert_eq!(inj.replica_stall(), None);
        assert_eq!(inj.ack_cut_by_crash(0, at(0), at(10)), None);
        assert_eq!(inj.metrics().total(), 0);
    }

    #[test]
    fn crash_window_faults_only_that_server() {
        let mut inj = FaultInjector::new(FaultPlan {
            crashes: vec![ServerCrash {
                server: 5,
                at: at(100),
                failover: Duration::from_millis(50),
            }],
            ..FaultPlan::default()
        });
        // Before, other server, after: untouched.
        assert_eq!(
            inj.decide(at(99), OpClass::QueuePut, &queue_pk(), 5),
            FaultDecision::None
        );
        assert_eq!(
            inj.decide(at(120), OpClass::QueuePut, &queue_pk(), 4),
            FaultDecision::None
        );
        assert_eq!(
            inj.decide(at(150), OpClass::QueuePut, &queue_pk(), 5),
            FaultDecision::None
        );
        // Inside the window: faulted, hint = remaining failover.
        assert_eq!(
            inj.decide(at(120), OpClass::QueuePut, &queue_pk(), 5),
            FaultDecision::Fault {
                retry_after: Duration::from_millis(30)
            }
        );
        assert_eq!(inj.metrics().crash_faults, 1);
    }

    #[test]
    fn blackout_faults_only_that_partition() {
        let other = PartitionKey::Queue { queue: "r".into() };
        let mut inj = FaultInjector::new(FaultPlan {
            blackouts: vec![PartitionBlackout {
                partition: queue_pk(),
                at: at(10),
                duration: Duration::from_millis(10),
            }],
            ..FaultPlan::default()
        });
        assert!(matches!(
            inj.decide(at(15), OpClass::QueueGet, &queue_pk(), 0),
            FaultDecision::Fault { .. }
        ));
        assert_eq!(
            inj.decide(at(15), OpClass::QueueGet, &other, 0),
            FaultDecision::None
        );
    }

    #[test]
    fn storm_rejects_everything_in_window() {
        let mut inj = FaultInjector::new(FaultPlan {
            busy_storms: vec![BusyStorm {
                at: at(0),
                duration: Duration::from_millis(5),
                retry_after: Duration::from_millis(250),
            }],
            ..FaultPlan::default()
        });
        assert_eq!(
            inj.decide(at(1), OpClass::TableInsert, &queue_pk(), 9),
            FaultDecision::Busy {
                retry_after: Duration::from_millis(250)
            }
        );
        assert_eq!(
            inj.decide(at(6), OpClass::TableInsert, &queue_pk(), 9),
            FaultDecision::None
        );
    }

    #[test]
    fn window_boundary_is_half_open_and_hint_agrees() {
        // A crash window [1s, 1s + 500ms): the last faulted instant is one
        // nanosecond before the end, and its retry hint points exactly at
        // the first served instant — hint and error window agree.
        let end = at(1_500);
        let mut inj = FaultInjector::new(FaultPlan {
            crashes: vec![ServerCrash {
                server: 2,
                at: at(1_000),
                failover: Duration::from_millis(500),
            }],
            ..FaultPlan::default()
        });
        let just_inside = SimTime(end.as_nanos() - 1);
        let d = inj.decide(just_inside, OpClass::QueuePut, &queue_pk(), 2);
        let FaultDecision::Fault { retry_after } = d else {
            panic!("expected Fault one tick before the window end, got {d:?}");
        };
        assert_eq!(retry_after, Duration::from_nanos(1));
        // Retrying after exactly the hinted wait succeeds: the boundary
        // instant `at + failover` is outside the half-open window.
        assert_eq!(
            inj.decide(just_inside + retry_after, OpClass::QueuePut, &queue_pk(), 2),
            FaultDecision::None
        );
        assert_eq!(
            inj.decide(end, OpClass::QueuePut, &queue_pk(), 2),
            FaultDecision::None
        );
        // Same convention at the start: `at` is the first faulted instant.
        assert!(matches!(
            inj.decide(at(1_000), OpClass::QueuePut, &queue_pk(), 2),
            FaultDecision::Fault { .. }
        ));
        assert_eq!(
            inj.decide(
                SimTime(at(1_000).as_nanos() - 1),
                OpClass::QueuePut,
                &queue_pk(),
                2
            ),
            FaultDecision::None
        );
        assert!(inj.plan().in_any_window(just_inside));
        assert!(!inj.plan().in_any_window(end));
    }

    #[test]
    fn control_ops_are_never_faulted() {
        let mut inj = FaultInjector::new(FaultPlan {
            busy_storms: vec![BusyStorm {
                at: at(0),
                duration: Duration::from_secs(10),
                retry_after: Duration::from_secs(1),
            }],
            timeout_prob: 1.0,
            ..FaultPlan::default()
        });
        assert_eq!(
            inj.decide(at(1), OpClass::QueueCreate, &queue_pk(), 0),
            FaultDecision::None
        );
    }

    #[test]
    fn probabilistic_faults_replay_identically_per_seed() {
        let run = |seed| {
            let mut inj = FaultInjector::new(FaultPlan {
                seed,
                timeout_prob: 0.3,
                ack_loss_prob: 0.2,
                replica_stall_prob: 0.2,
                ..FaultPlan::default()
            });
            let mut seq = Vec::new();
            for ms in 0..200 {
                seq.push(inj.decide(at(ms), OpClass::QueuePut, &queue_pk(), 0));
                seq.push(if inj.replica_stall().is_some() {
                    FaultDecision::Drop {
                        elapsed: Duration::ZERO,
                    }
                } else {
                    FaultDecision::None
                });
            }
            (seq, *inj.metrics())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds, different faults");
        let (_, m) = run(7);
        assert!(m.dropped > 0 && m.ack_losses > 0 && m.replica_stalls > 0);
        assert_eq!(m.ambiguous(), m.dropped + m.ack_losses);
    }

    #[test]
    fn probabilistic_draws_are_schedule_independent() {
        // The satellite fix pinned: adding a scheduled window must not
        // reshuffle which requests the probabilistic stream drops. The
        // n-th request's fate is a pure function of (seed, n), so requests
        // outside the storm decide identically with and without it.
        let storm = BusyStorm {
            at: at(50),
            duration: Duration::from_millis(25),
            retry_after: Duration::from_millis(5),
        };
        let run = |storms: Vec<BusyStorm>| {
            let mut inj = FaultInjector::new(FaultPlan {
                seed: 11,
                timeout_prob: 0.25,
                ack_loss_prob: 0.15,
                busy_storms: storms,
                ..FaultPlan::default()
            });
            (0..200)
                .map(|ms| inj.decide(at(ms), OpClass::QueuePut, &queue_pk(), 0))
                .collect::<Vec<_>>()
        };
        let bare = run(vec![]);
        let stormy = run(vec![storm]);
        let mut in_storm = 0;
        for (ms, (a, b)) in bare.iter().zip(&stormy).enumerate() {
            if (50..75).contains(&ms) {
                assert!(
                    matches!(b, FaultDecision::Busy { .. }),
                    "request at {ms}ms should hit the storm"
                );
                in_storm += 1;
            } else {
                assert_eq!(a, b, "schedule edit changed the draw at {ms}ms");
            }
        }
        assert_eq!(in_storm, 25);
    }

    #[test]
    fn ack_loss_draws_are_independent_of_drop_draws() {
        // With only ack losses enabled the same requests that previously
        // dropped may now succeed: the two kinds use separate streams.
        let decide_all = |timeout_prob, ack_loss_prob| {
            let mut inj = FaultInjector::new(FaultPlan {
                seed: 5,
                timeout_prob,
                ack_loss_prob,
                ..FaultPlan::default()
            });
            (0..300)
                .map(|ms| inj.decide(at(ms), OpClass::TableInsert, &queue_pk(), 0))
                .collect::<Vec<_>>()
        };
        let drops = decide_all(0.2, 0.0);
        let acks = decide_all(0.0, 0.2);
        let both = decide_all(0.2, 0.2);
        assert!(drops
            .iter()
            .any(|d| matches!(d, FaultDecision::Drop { .. })));
        assert!(acks
            .iter()
            .any(|d| matches!(d, FaultDecision::AckLoss { .. })));
        // Composition: a request that dropped still drops (drop is checked
        // first); an ack loss only fires where no drop did.
        for (i, d) in both.iter().enumerate() {
            match drops[i] {
                FaultDecision::Drop { .. } => assert_eq!(*d, drops[i]),
                _ => assert_eq!(*d, acks[i]),
            }
        }
    }

    #[test]
    fn crash_cuts_in_flight_replicated_acks() {
        let crashes = vec![ServerCrash {
            server: 3,
            at: at(100),
            failover: Duration::from_secs(1),
        }];
        // Cuts are opt-in: without the flag a crash plan stays unambiguous.
        let mut gated = FaultInjector::new(FaultPlan {
            crashes: crashes.clone(),
            ..FaultPlan::default()
        });
        assert_eq!(gated.ack_cut_by_crash(3, at(99), at(105)), None);
        assert_eq!(gated.metrics().crash_ambiguous, 0);

        let mut inj = FaultInjector::new(FaultPlan {
            crashes,
            crash_cuts_acks: true,
            ..FaultPlan::default()
        });
        // Write admitted before the crash, still replicating when it hits.
        assert_eq!(
            inj.ack_cut_by_crash(3, at(99), at(105)),
            Some(Duration::from_secs(30))
        );
        // Other server, or fully replicated before the crash: untouched.
        assert_eq!(inj.ack_cut_by_crash(2, at(99), at(105)), None);
        assert_eq!(
            inj.ack_cut_by_crash(3, at(90), SimTime(at(100).as_nanos() - 1)),
            None
        );
        // Admitted at the crash instant: the window check (not the cut)
        // already rejected it; `at > service_start` keeps the two disjoint.
        assert_eq!(inj.ack_cut_by_crash(3, at(100), at(110)), None);
        assert_eq!(inj.metrics().crash_ambiguous, 1);
    }

    #[test]
    fn inertness_detection() {
        assert!(FaultPlan::default().is_inert());
        assert!(!FaultPlan {
            timeout_prob: 0.01,
            ..FaultPlan::default()
        }
        .is_inert());
        assert!(!FaultPlan {
            ack_loss_prob: 0.01,
            ..FaultPlan::default()
        }
        .is_inert());
        assert!(!FaultPlan {
            crashes: vec![ServerCrash {
                server: 0,
                at: SimTime::ZERO,
                failover: Duration::from_secs(1)
            }],
            ..FaultPlan::default()
        }
        .is_inert());
    }
}
