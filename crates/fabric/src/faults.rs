//! Deterministic, seeded fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] describes *when and where* the cluster misbehaves:
//!
//! * **scheduled** events — partition-server crashes with a failover
//!   window ([`ServerCrash`]), per-partition transient unavailability
//!   ([`PartitionBlackout`]), and cluster-wide `ServerBusy` storms
//!   ([`BusyStorm`]) — are pure time windows, reproduced identically on
//!   every run;
//! * **probabilistic** events — request timeouts/drops and replica-sync
//!   stalls — are drawn from a dedicated RNG stream derived from the
//!   plan's seed, so two runs with the same plan, workload and seed
//!   observe byte-identical fault sequences.
//!
//! The default plan is **inert**: every list empty, every probability
//! zero. An inert plan is never consulted beyond one boolean check and
//! draws no randomness, so enabling the subsystem does not perturb
//! baseline (paper-reproduction) runs in any way.
//!
//! Faults surface to clients as the two `StorageError` variants added for
//! this subsystem: [`StorageError::ServerFault`] for crash/blackout
//! windows and [`StorageError::Timeout`] for dropped requests, plus extra
//! [`StorageError::ServerBusy`] results during storms.

use azsim_core::rng::stream_rng;
use azsim_core::SimTime;
use azsim_storage::{OpClass, PartitionKey};
use rand::rngs::SmallRng;
use rand::Rng;
use std::time::Duration;

/// RNG stream id for fault decisions (distinct from the cluster's other
/// streams, which derive from `ClusterParams::seed`).
const FAULT_STREAM: u64 = 0xFA17;

/// One partition-server crash: every partition placed on `server` is
/// unavailable for `failover` after `at` (WAS reassigns its partitions to
/// other servers; the window models reload + replay).
#[derive(Clone, Debug, PartialEq)]
pub struct ServerCrash {
    /// Index of the crashed server (`PartitionKey::server_index`).
    pub server: usize,
    /// Crash instant.
    pub at: SimTime,
    /// How long the partitions stay unavailable.
    pub failover: Duration,
}

/// One partition's transient unavailability window (e.g. a partition
/// being moved, or its log being sealed).
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionBlackout {
    /// The affected partition.
    pub partition: PartitionKey,
    /// Window start.
    pub at: SimTime,
    /// Window length.
    pub duration: Duration,
}

/// A window during which every data-plane request is rejected with
/// `ServerBusy` regardless of the token buckets — an injected throttle
/// storm, as seen during cluster-wide load spikes.
#[derive(Clone, Debug, PartialEq)]
pub struct BusyStorm {
    /// Window start.
    pub at: SimTime,
    /// Window length.
    pub duration: Duration,
    /// Retry hint returned with the injected rejections.
    pub retry_after: Duration,
}

/// A complete fault schedule for one run. Construct with struct-update
/// syntax over [`FaultPlan::default`], which is inert.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault RNG stream (independent of the workload seed so
    /// fault sequences can be varied while the workload is held fixed).
    pub seed: u64,
    /// Scheduled server crashes.
    pub crashes: Vec<ServerCrash>,
    /// Scheduled per-partition blackouts.
    pub blackouts: Vec<PartitionBlackout>,
    /// Scheduled throttle storms.
    pub busy_storms: Vec<BusyStorm>,
    /// Probability that a data-plane request is dropped (client observes a
    /// timeout; the operation never executes).
    pub timeout_prob: f64,
    /// The client-side wait modeled for a dropped request.
    pub timeout: Duration,
    /// Probability that a replicated write's sync stalls.
    pub replica_stall_prob: f64,
    /// Extra latency added by a replica-sync stall.
    pub replica_stall: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            crashes: Vec::new(),
            blackouts: Vec::new(),
            busy_storms: Vec::new(),
            timeout_prob: 0.0,
            timeout: Duration::from_secs(30),
            replica_stall_prob: 0.0,
            replica_stall: Duration::from_millis(200),
        }
    }
}

impl FaultPlan {
    /// Whether this plan can never inject anything.
    pub fn is_inert(&self) -> bool {
        self.crashes.is_empty()
            && self.blackouts.is_empty()
            && self.busy_storms.is_empty()
            && self.timeout_prob <= 0.0
            && self.replica_stall_prob <= 0.0
    }
}

/// What the injector decided for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDecision {
    /// Proceed normally.
    None,
    /// Reject with `ServerBusy { retry_after }` (storm).
    Busy {
        /// Retry hint to return.
        retry_after: Duration,
    },
    /// Reject with `ServerFault { retry_after }` (crash/blackout window);
    /// the hint is the time remaining in the window.
    Fault {
        /// Remaining unavailability.
        retry_after: Duration,
    },
    /// Drop the request; the client observes `Timeout { elapsed }` after
    /// its wait. The operation does not execute.
    Drop {
        /// The modeled client-side wait.
        elapsed: Duration,
    },
}

/// Counters of injected events (all zero under an inert plan).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultMetrics {
    /// `ServerBusy` rejections injected by storms.
    pub injected_busy: u64,
    /// `ServerFault` rejections from crash windows.
    pub crash_faults: u64,
    /// `ServerFault` rejections from partition blackouts.
    pub blackout_faults: u64,
    /// Requests dropped (client timeouts).
    pub dropped: u64,
    /// Replica-sync stalls applied.
    pub replica_stalls: u64,
}

impl FaultMetrics {
    /// Total injected faults of all kinds.
    pub fn total(&self) -> u64 {
        self.injected_busy
            + self.crash_faults
            + self.blackout_faults
            + self.dropped
            + self.replica_stalls
    }
}

/// Executes a [`FaultPlan`] against the request stream. Owned by the
/// cluster; consulted once per data-plane request.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SmallRng,
    metrics: FaultMetrics,
    active: bool,
}

impl FaultInjector {
    /// Build from a plan.
    pub fn new(plan: FaultPlan) -> Self {
        let active = !plan.is_inert();
        FaultInjector {
            rng: stream_rng(plan.seed, FAULT_STREAM),
            active,
            metrics: FaultMetrics::default(),
            plan,
        }
    }

    /// An injector that never fires.
    pub fn inert() -> Self {
        Self::new(FaultPlan::default())
    }

    /// Whether any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counts of injected events so far.
    pub fn metrics(&self) -> &FaultMetrics {
        &self.metrics
    }

    /// Decide the fate of one request arriving at `now` for partition
    /// `pk` on server `server`. Control-plane operations (create/delete
    /// of namespaces) are never faulted so harness setup stays reliable.
    ///
    /// Decision order mirrors the request path: storm rejection happens
    /// at the front end (before placement), then crash/blackout at the
    /// partition server, then in-flight drops, with replica stalls
    /// handled separately by [`FaultInjector::replica_stall`].
    pub fn decide(
        &mut self,
        now: SimTime,
        class: OpClass,
        pk: &PartitionKey,
        server: usize,
    ) -> FaultDecision {
        if !self.active || class.is_control() {
            return FaultDecision::None;
        }
        for storm in &self.plan.busy_storms {
            if in_window(now, storm.at, storm.duration) {
                self.metrics.injected_busy += 1;
                return FaultDecision::Busy {
                    retry_after: storm.retry_after,
                };
            }
        }
        for crash in &self.plan.crashes {
            if crash.server == server && in_window(now, crash.at, crash.failover) {
                self.metrics.crash_faults += 1;
                return FaultDecision::Fault {
                    retry_after: remaining(now, crash.at, crash.failover),
                };
            }
        }
        for blackout in &self.plan.blackouts {
            if blackout.partition == *pk && in_window(now, blackout.at, blackout.duration) {
                self.metrics.blackout_faults += 1;
                return FaultDecision::Fault {
                    retry_after: remaining(now, blackout.at, blackout.duration),
                };
            }
        }
        // Probabilistic drops draw randomness only when the knob is on,
        // so scheduled-only plans stay RNG-free (and replayable even if
        // the schedule is edited).
        if self.plan.timeout_prob > 0.0 && self.rng.random::<f64>() < self.plan.timeout_prob {
            self.metrics.dropped += 1;
            return FaultDecision::Drop {
                elapsed: self.plan.timeout,
            };
        }
        FaultDecision::None
    }

    /// Number of scheduled fault windows (storms, crashes, blackouts)
    /// containing `now`. Pure; used by the timeline's active-faults gauge.
    pub fn active_windows(&self, now: SimTime) -> usize {
        let p = &self.plan;
        p.busy_storms
            .iter()
            .filter(|s| in_window(now, s.at, s.duration))
            .count()
            + p.crashes
                .iter()
                .filter(|c| in_window(now, c.at, c.failover))
                .count()
            + p.blackouts
                .iter()
                .filter(|b| in_window(now, b.at, b.duration))
                .count()
    }

    /// Extra replica-sync latency for a replicated write, if a stall
    /// fires. Called only for operations that actually replicate.
    pub fn replica_stall(&mut self) -> Option<Duration> {
        if !self.active || self.plan.replica_stall_prob <= 0.0 {
            return None;
        }
        if self.rng.random::<f64>() < self.plan.replica_stall_prob {
            self.metrics.replica_stalls += 1;
            Some(self.plan.replica_stall)
        } else {
            None
        }
    }
}

fn in_window(now: SimTime, start: SimTime, len: Duration) -> bool {
    now >= start && now < start + len
}

fn remaining(now: SimTime, start: SimTime, len: Duration) -> Duration {
    (start + len).saturating_since(now)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn queue_pk() -> PartitionKey {
        PartitionKey::Queue { queue: "q".into() }
    }

    #[test]
    fn default_plan_is_inert_and_silent() {
        let mut inj = FaultInjector::inert();
        assert!(!inj.is_active());
        for ms in 0..100 {
            assert_eq!(
                inj.decide(at(ms), OpClass::QueuePut, &queue_pk(), 3),
                FaultDecision::None
            );
        }
        assert_eq!(inj.replica_stall(), None);
        assert_eq!(inj.metrics().total(), 0);
    }

    #[test]
    fn crash_window_faults_only_that_server() {
        let mut inj = FaultInjector::new(FaultPlan {
            crashes: vec![ServerCrash {
                server: 5,
                at: at(100),
                failover: Duration::from_millis(50),
            }],
            ..FaultPlan::default()
        });
        // Before, other server, after: untouched.
        assert_eq!(
            inj.decide(at(99), OpClass::QueuePut, &queue_pk(), 5),
            FaultDecision::None
        );
        assert_eq!(
            inj.decide(at(120), OpClass::QueuePut, &queue_pk(), 4),
            FaultDecision::None
        );
        assert_eq!(
            inj.decide(at(150), OpClass::QueuePut, &queue_pk(), 5),
            FaultDecision::None
        );
        // Inside the window: faulted, hint = remaining failover.
        assert_eq!(
            inj.decide(at(120), OpClass::QueuePut, &queue_pk(), 5),
            FaultDecision::Fault {
                retry_after: Duration::from_millis(30)
            }
        );
        assert_eq!(inj.metrics().crash_faults, 1);
    }

    #[test]
    fn blackout_faults_only_that_partition() {
        let other = PartitionKey::Queue { queue: "r".into() };
        let mut inj = FaultInjector::new(FaultPlan {
            blackouts: vec![PartitionBlackout {
                partition: queue_pk(),
                at: at(10),
                duration: Duration::from_millis(10),
            }],
            ..FaultPlan::default()
        });
        assert!(matches!(
            inj.decide(at(15), OpClass::QueueGet, &queue_pk(), 0),
            FaultDecision::Fault { .. }
        ));
        assert_eq!(
            inj.decide(at(15), OpClass::QueueGet, &other, 0),
            FaultDecision::None
        );
    }

    #[test]
    fn storm_rejects_everything_in_window() {
        let mut inj = FaultInjector::new(FaultPlan {
            busy_storms: vec![BusyStorm {
                at: at(0),
                duration: Duration::from_millis(5),
                retry_after: Duration::from_millis(250),
            }],
            ..FaultPlan::default()
        });
        assert_eq!(
            inj.decide(at(1), OpClass::TableInsert, &queue_pk(), 9),
            FaultDecision::Busy {
                retry_after: Duration::from_millis(250)
            }
        );
        assert_eq!(
            inj.decide(at(6), OpClass::TableInsert, &queue_pk(), 9),
            FaultDecision::None
        );
    }

    #[test]
    fn control_ops_are_never_faulted() {
        let mut inj = FaultInjector::new(FaultPlan {
            busy_storms: vec![BusyStorm {
                at: at(0),
                duration: Duration::from_secs(10),
                retry_after: Duration::from_secs(1),
            }],
            timeout_prob: 1.0,
            ..FaultPlan::default()
        });
        assert_eq!(
            inj.decide(at(1), OpClass::QueueCreate, &queue_pk(), 0),
            FaultDecision::None
        );
    }

    #[test]
    fn probabilistic_faults_replay_identically_per_seed() {
        let run = |seed| {
            let mut inj = FaultInjector::new(FaultPlan {
                seed,
                timeout_prob: 0.3,
                replica_stall_prob: 0.2,
                ..FaultPlan::default()
            });
            let mut seq = Vec::new();
            for ms in 0..200 {
                seq.push(matches!(
                    inj.decide(at(ms), OpClass::QueuePut, &queue_pk(), 0),
                    FaultDecision::Drop { .. }
                ));
                seq.push(inj.replica_stall().is_some());
            }
            (seq, *inj.metrics())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds, different faults");
        let (_, m) = run(7);
        assert!(m.dropped > 0 && m.replica_stalls > 0);
    }

    #[test]
    fn inertness_detection() {
        assert!(FaultPlan::default().is_inert());
        assert!(!FaultPlan {
            timeout_prob: 0.01,
            ..FaultPlan::default()
        }
        .is_inert());
        assert!(!FaultPlan {
            crashes: vec![ServerCrash {
                server: 0,
                at: SimTime::ZERO,
                failover: Duration::from_secs(1)
            }],
            ..FaultPlan::default()
        }
        .is_inert());
    }
}
