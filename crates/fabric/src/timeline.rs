//! Cluster-side timeline instrumentation: gauge sampling points, inflight
//! tracking and time-weighted resource-usage accounting.
//!
//! [`ClusterTimeline`] owns a [`GaugeRecorder`] plus the bookkeeping the
//! recorder itself does not know about: which gauge ids belong to which
//! cluster resource, the inflight-operation heap, and per-resource
//! [`SaturationTracker`]s. The cluster samples it once per submitted
//! operation through side-effect-free resource accessors
//! ([`azsim_core::resource::TokenBucket::fill`], `next_free`), so an
//! enabled timeline observes the simulation without perturbing it: all
//! virtual completion times — and therefore every golden figure CSV — are
//! bit-identical with sampling on or off.
//!
//! Sampling at arrivals is exact for saturation accounting: every resource
//! in the discrete-event model changes state only at arrivals, so carrying
//! the last observed state forward between samples reconstructs the true
//! state function.

use azsim_core::timeline::{CounterId, GaugeId, GaugeRecorder, SaturationTracker};
use azsim_core::SimTime;
use azsim_storage::PartitionKey;
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

/// Gauge handles of one partition slot's series.
struct SlotSeries {
    /// Token-bucket fill (queue/table partitions only).
    fill: Option<GaugeId>,
    /// Per-blob write-pipe backlog in seconds (blob partitions only).
    pipe_backlog: Option<GaugeId>,
    /// Partition-server FIFO backlog in seconds.
    fifo_backlog: GaugeId,
}

/// Cluster-wide gauge snapshot taken at one arrival.
pub(crate) struct ClusterSample {
    /// Account transaction bucket fill, in tokens.
    pub account_tx_fill: f64,
    /// Account uplink backlog, seconds.
    pub up_backlog_s: f64,
    /// Account downlink backlog, seconds.
    pub down_backlog_s: f64,
    /// Shared table front-end backlog, seconds.
    pub table_frontend_backlog_s: f64,
    /// Submitting actor's NIC backlog, seconds (if the NIC exists yet).
    pub nic_backlog_s: Option<f64>,
    /// Scheduled fault windows containing the sample instant.
    pub fault_windows: usize,
}

/// The cluster's timeline state (present only when sampling is enabled).
pub struct ClusterTimeline {
    recorder: GaugeRecorder,
    g_account_tx_fill: GaugeId,
    g_inflight: GaugeId,
    g_fault_windows: GaugeId,
    g_up_backlog: GaugeId,
    g_down_backlog: GaugeId,
    g_table_frontend_backlog: GaugeId,
    g_nic_backlog: GaugeId,
    c_submitted: CounterId,
    c_throttled: CounterId,
    c_ambiguous: CounterId,
    submitted: u64,
    throttled: u64,
    ambiguous: u64,
    /// Per-slot gauge handles, lazily registered — every partition gets a
    /// series; the recorder's adaptive budget bounds total memory.
    slot_series: Vec<Option<SlotSeries>>,
    /// Per-slot bucket saturation, O(1) each.
    slot_sat: Vec<SaturationTracker>,
    account_tx_sat: SaturationTracker,
    /// Completion times of operations still in flight.
    inflight: BinaryHeap<Reverse<u64>>,
}

impl ClusterTimeline {
    /// Global bucket budget across every gauge/counter series. Equal to
    /// the worst case of the old design (64 capped slot series × 512
    /// buckets each), but spent adaptively: any number of partitions may
    /// register series, and when the total overflows, each series coarsens
    /// its own resolution to a fair share instead of later partitions
    /// being dropped outright.
    pub const BUCKET_BUDGET: usize = 64 * 512;

    /// A timeline sampling at the given virtual-time resolution.
    pub fn new(resolution: Duration) -> Self {
        let mut recorder = GaugeRecorder::new(resolution).with_adaptive_budget(Self::BUCKET_BUDGET);
        let g_account_tx_fill = recorder.register_gauge("account_tx.fill", "tokens");
        let g_inflight = recorder.register_gauge("cluster.inflight", "ops");
        let g_fault_windows = recorder.register_gauge("faults.active_windows", "windows");
        let g_up_backlog = recorder.register_gauge("account_up.backlog", "seconds");
        let g_down_backlog = recorder.register_gauge("account_down.backlog", "seconds");
        let g_table_frontend_backlog = recorder.register_gauge("table_frontend.backlog", "seconds");
        let g_nic_backlog = recorder.register_gauge("nic.backlog", "seconds");
        let c_submitted = recorder.register_counter("ops.submitted");
        let c_throttled = recorder.register_counter("ops.throttled");
        let c_ambiguous = recorder.register_counter("ops.ambiguous");
        ClusterTimeline {
            recorder,
            g_account_tx_fill,
            g_inflight,
            g_fault_windows,
            g_up_backlog,
            g_down_backlog,
            g_table_frontend_backlog,
            g_nic_backlog,
            c_submitted,
            c_throttled,
            c_ambiguous,
            submitted: 0,
            throttled: 0,
            ambiguous: 0,
            slot_series: Vec::new(),
            slot_sat: Vec::new(),
            account_tx_sat: SaturationTracker::new(),
            inflight: BinaryHeap::new(),
        }
    }

    /// The recorded series and events.
    pub fn recorder(&self) -> &GaugeRecorder {
        &self.recorder
    }

    /// Record one slot's state at an arrival. `bucket_fill` is present for
    /// queue/table partitions, `pipe_backlog_s` for blob partitions.
    pub(crate) fn observe_slot(
        &mut self,
        now: SimTime,
        slot_id: usize,
        key: &PartitionKey,
        bucket_fill: Option<f64>,
        pipe_backlog_s: Option<f64>,
        fifo_backlog_s: f64,
    ) {
        if self.slot_series.len() <= slot_id {
            self.slot_series.resize_with(slot_id + 1, || None);
            self.slot_sat
                .resize_with(slot_id + 1, SaturationTracker::new);
        }
        if let Some(fill) = bucket_fill {
            // A bucket is saturated when not even one token is left: the
            // next arrival at this instant would be throttled.
            self.slot_sat[slot_id].observe(now, fill < 1.0);
        }
        if self.slot_series[slot_id].is_none() {
            let label = key.to_string();
            let fill_id = bucket_fill.map(|_| {
                self.recorder
                    .register_gauge(format!("bucket_fill:{label}"), "tokens")
            });
            let pipe_id = pipe_backlog_s.map(|_| {
                self.recorder
                    .register_gauge(format!("blob_write_backlog:{label}"), "seconds")
            });
            let fifo_id = self
                .recorder
                .register_gauge(format!("fifo_backlog:{label}"), "seconds");
            self.slot_series[slot_id] = Some(SlotSeries {
                fill: fill_id,
                pipe_backlog: pipe_id,
                fifo_backlog: fifo_id,
            });
        }
        if let Some(series) = &self.slot_series[slot_id] {
            if let (Some(id), Some(v)) = (series.fill, bucket_fill) {
                self.recorder.record_gauge(id, now, v);
            }
            if let (Some(id), Some(v)) = (series.pipe_backlog, pipe_backlog_s) {
                self.recorder.record_gauge(id, now, v);
            }
            self.recorder
                .record_gauge(series.fifo_backlog, now, fifo_backlog_s);
        }
    }

    /// Record the cluster-wide gauges at an arrival.
    pub(crate) fn observe_cluster(&mut self, now: SimTime, s: ClusterSample) {
        self.account_tx_sat.observe(now, s.account_tx_fill < 1.0);
        self.recorder
            .record_gauge(self.g_account_tx_fill, now, s.account_tx_fill);
        self.recorder
            .record_gauge(self.g_up_backlog, now, s.up_backlog_s);
        self.recorder
            .record_gauge(self.g_down_backlog, now, s.down_backlog_s);
        self.recorder.record_gauge(
            self.g_table_frontend_backlog,
            now,
            s.table_frontend_backlog_s,
        );
        if let Some(v) = s.nic_backlog_s {
            self.recorder.record_gauge(self.g_nic_backlog, now, v);
        }
        self.recorder
            .record_gauge(self.g_fault_windows, now, s.fault_windows as f64);
        // Drain completions the virtual clock has passed, then record how
        // many operations are still in flight.
        while let Some(Reverse(done)) = self.inflight.peek().copied() {
            if done <= now.as_nanos() {
                self.inflight.pop();
            } else {
                break;
            }
        }
        self.recorder
            .record_gauge(self.g_inflight, now, self.inflight.len() as f64);
    }

    /// Re-record the running counter totals at `now` without a new outcome.
    /// The live-mode periodic flush uses this to keep the delta series
    /// current (emitting zero deltas) across idle stretches.
    pub(crate) fn flush_counters(&mut self, now: SimTime) {
        self.recorder
            .record_counter(self.c_submitted, now, self.submitted as f64);
        self.recorder
            .record_counter(self.c_throttled, now, self.throttled as f64);
        self.recorder
            .record_counter(self.c_ambiguous, now, self.ambiguous as f64);
    }

    /// Account one ambiguous outcome (the client observed a timeout and
    /// cannot know whether the operation executed) at `now`.
    pub(crate) fn note_ambiguous(&mut self, now: SimTime) {
        self.ambiguous += 1;
        self.recorder
            .record_counter(self.c_ambiguous, now, self.ambiguous as f64);
    }

    /// Account one submitted operation's outcome: arrival at `now`,
    /// (virtual) completion at `done`, throttled or not.
    pub(crate) fn note_outcome(&mut self, now: SimTime, done: SimTime, throttled: bool) {
        self.submitted += 1;
        if throttled {
            self.throttled += 1;
        }
        self.recorder
            .record_counter(self.c_submitted, now, self.submitted as f64);
        self.recorder
            .record_counter(self.c_throttled, now, self.throttled as f64);
        self.inflight.push(Reverse(done.as_nanos()));
    }

    /// Time-weighted saturation of one slot's token bucket, if observed.
    pub(crate) fn slot_saturation(&self, slot_id: usize, end: SimTime) -> Option<f64> {
        self.slot_sat
            .get(slot_id)
            .filter(|t| t.observed())
            .map(|t| t.fraction(end))
    }

    /// Time-weighted saturation of the account transaction bucket.
    pub(crate) fn account_tx_saturation(&self, end: SimTime) -> f64 {
        self.account_tx_sat.fraction(end)
    }
}

/// Time-weighted usage of one cluster resource over a run — the raw
/// material of bottleneck attribution.
#[derive(Clone, Debug, Serialize)]
pub struct ResourceUsage {
    /// Stable resource label (e.g. `bucket:queue:mix-shared`,
    /// `pipe:table_frontend`, `account_tx`).
    pub resource: String,
    /// Resource kind: `token_bucket`, `fifo` or `pipe`.
    pub kind: String,
    /// Fraction of the observed window the resource was saturated
    /// (buckets: time with < 1 token; FIFOs/pipes: busy-time utilization).
    pub saturation: f64,
    /// Admissions rejected by this resource (token buckets only).
    pub throttled: u64,
    /// Total busy time, seconds (FIFOs and pipes).
    pub busy_s: f64,
}

impl ResourceUsage {
    /// Build a pipe/FIFO usage row from exact busy-time accounting.
    pub(crate) fn busy(resource: String, kind: &str, busy: Duration, window: Duration) -> Self {
        let w = window.as_secs_f64();
        ResourceUsage {
            resource,
            kind: kind.to_string(),
            saturation: if w > 0.0 {
                (busy.as_secs_f64() / w).min(1.0)
            } else {
                0.0
            },
            throttled: 0,
            busy_s: busy.as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn every_slot_gets_a_series_within_the_adaptive_budget() {
        // 5 slots past the old 64-series cap: all of them get gauge series
        // now (no drop cliff), and the adaptive budget keeps total bucket
        // memory bounded no matter how many slots register.
        let mut tl = ClusterTimeline::new(Duration::from_millis(10));
        let slots = 69;
        for i in 0..slots {
            let key = PartitionKey::Queue {
                queue: format!("q{i}"),
            };
            for t in 0..20u64 {
                tl.observe_slot(at(i as u64 * 100 + t), i, &key, Some(50.0), None, 0.0);
            }
        }
        let fills = tl
            .recorder()
            .gauges()
            .iter()
            .filter(|g| g.name.starts_with("bucket_fill:"))
            .count();
        assert_eq!(fills, slots, "every partition slot has its own series");
        assert!(tl.recorder().total_buckets() <= ClusterTimeline::BUCKET_BUDGET);
        // Saturation tracking covers every slot too.
        assert!(tl.slot_saturation(slots - 1, at(100_000)).is_some());
    }

    #[test]
    fn inflight_gauge_tracks_outstanding_completions() {
        let mut tl = ClusterTimeline::new(Duration::from_millis(1));
        let sample = |tl: &mut ClusterTimeline, t| {
            tl.observe_cluster(
                t,
                ClusterSample {
                    account_tx_fill: 100.0,
                    up_backlog_s: 0.0,
                    down_backlog_s: 0.0,
                    table_frontend_backlog_s: 0.0,
                    nic_backlog_s: None,
                    fault_windows: 0,
                },
            );
        };
        tl.note_outcome(at(0), at(100), false);
        tl.note_outcome(at(1), at(50), false);
        sample(&mut tl, at(10)); // both still in flight
        sample(&mut tl, at(60)); // the at(50) completion drained
        sample(&mut tl, at(200)); // all drained
        let inflight = tl
            .recorder()
            .gauges()
            .iter()
            .find(|g| g.name == "cluster.inflight")
            .unwrap();
        let values: Vec<f64> = inflight.series.iter().map(|(_, b)| b.last).collect();
        assert_eq!(values, vec![2.0, 1.0, 0.0]);
    }

    #[test]
    fn counters_and_saturation_accumulate() {
        let mut tl = ClusterTimeline::new(Duration::from_millis(100));
        let key = PartitionKey::Queue { queue: "q".into() };
        // Saturated from t=0 to t=200, then recovered.
        tl.observe_slot(at(0), 0, &key, Some(0.2), None, 0.0);
        tl.observe_slot(at(200), 0, &key, Some(5.0), None, 0.0);
        tl.note_outcome(at(0), at(1), true);
        tl.note_outcome(at(200), at(201), false);
        let sat = tl.slot_saturation(0, at(400)).unwrap();
        assert!((sat - 0.5).abs() < 1e-12, "saturation {sat}");
        let throttled = tl
            .recorder()
            .counters()
            .iter()
            .find(|c| c.name == "ops.throttled")
            .unwrap();
        let total: f64 = throttled.series.series().iter().map(|(_, b)| b.sum).sum();
        assert_eq!(total, 1.0);
    }
}
