//! # azsim-fabric — the simulated Windows Azure Storage cluster
//!
//! This crate turns the pure service state machines (`azsim-blob`,
//! `azsim-queue`, `azsim-table`) into a *cluster* with the architecture the
//! paper's measurements expose:
//!
//! * a fleet of **partition servers**; every partition (blob = container +
//!   blob name, queue = queue name, table partition = table + PartitionKey)
//!   is serialized on its own FIFO and placed on a server by stable hash;
//! * **three-replica strong consistency**: writes pay a replica
//!   synchronization term, `GetMessage` additionally pays invisibility-state
//!   propagation — which is exactly why the paper measures
//!   Peek < Put < Get;
//! * **per-blob data pipes** (the 60 MB/s per-blob throughput target, with a
//!   higher replica/cache-assisted read ceiling);
//! * **token-bucket throttles** for the documented scalability targets
//!   (500 msg/s per queue, 500 entities/s per table partition, 5 000 tx/s
//!   and 3 GB/s per account) that surface as `ServerBusy`;
//! * **per-VM NICs** sized by the role-instance VM size;
//! * a deliberately modeled **16 KB `GetMessage` anomaly**
//!   (`ClusterParams::quirk_get16k`) reproducing the consistent,
//!   unexplained slowdown the paper reports in Figure 6(c).
//!
//! [`cluster::Cluster`] implements [`azsim_core::Model`], so the whole thing
//! plugs into the virtual-time runtime; the same object can be driven in
//! real time by `azsim-client`'s live mode.

pub mod backend;
pub mod cluster;
pub mod faults;
pub mod fleet;
pub mod metrics;
pub mod params;
pub mod timeline;
pub mod trace;
pub mod verify;

pub use backend::{BackendKind, BackendProfile, StorageBackend, ThrottleShape};
pub use cluster::Cluster;
pub use faults::{
    BusyStorm, FaultInjector, FaultMetrics, FaultPlan, PartitionBlackout, ServerCrash,
};
pub use fleet::{Fleet, FleetReq};
pub use metrics::{ClusterMetrics, MetricsSnapshot, OpCounter, PartitionHeat};
pub use params::ClusterParams;
pub use timeline::{ClusterTimeline, ResourceUsage};
pub use trace::{Phase, PhaseAggregate, PhaseBreadcrumb, TraceOutcome, TraceRecord, Tracer};
pub use verify::{History, OpOutcome, OpRecord};
