//! Per-operation tracing.
//!
//! When enabled, the cluster records one [`TraceRecord`] per submitted
//! operation — issue/completion virtual timestamps, class, actor, payload
//! sizes, outcome. Traces are the raw material for latency-distribution
//! analysis (beyond the per-class means in [`crate::ClusterMetrics`]) and
//! for debugging model behaviour; `to_csv` renders them for external
//! tooling.

use azsim_core::SimTime;
use azsim_storage::OpClass;

/// One traced operation.
#[derive(Clone, Copy, Debug)]
pub struct TraceRecord {
    /// Virtual time the request arrived at the cluster.
    pub issued: SimTime,
    /// Virtual completion time.
    pub completed: SimTime,
    /// Issuing role instance.
    pub actor: usize,
    /// Operation class.
    pub class: OpClass,
    /// Operation outcome.
    pub outcome: TraceOutcome,
    /// Payload bytes client → server.
    pub bytes_up: u64,
    /// Payload bytes server → client.
    pub bytes_down: u64,
}

/// How a traced operation ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Completed successfully.
    Ok,
    /// Rejected by a throttle (`ServerBusy`).
    Throttled,
    /// Failed with a semantic error.
    Failed,
    /// Rejected by an injected server fault (`ServerFault`).
    Faulted,
    /// Dropped by fault injection; the client observed a timeout.
    TimedOut,
}

impl TraceRecord {
    /// Operation latency.
    pub fn latency(&self) -> std::time::Duration {
        self.completed.saturating_since(self.issued)
    }
}

/// A bounded trace buffer (disabled by default; enabling costs one record
/// per operation).
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    records: Vec<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl Tracer {
    /// A tracer that keeps at most `capacity` records (older operations
    /// are *not* evicted — the buffer stops recording and counts drops, so
    /// the retained prefix stays contiguous).
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            records: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Record one operation.
    pub fn record(&mut self, r: TraceRecord) {
        if self.records.len() < self.capacity {
            self.records.push(r);
        } else {
            self.dropped += 1;
        }
    }

    /// The retained records, in completion-processing order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Operations that arrived after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render as CSV (`issued_s,completed_s,latency_ms,actor,class,outcome,bytes_up,bytes_down`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "issued_s,completed_s,latency_ms,actor,class,outcome,bytes_up,bytes_down\n",
        );
        for r in &self.records {
            out.push_str(&format!(
                "{:.9},{:.9},{:.6},{},{},{},{},{}\n",
                r.issued.as_secs_f64(),
                r.completed.as_secs_f64(),
                r.latency().as_secs_f64() * 1e3,
                r.actor,
                r.class.label(),
                match r.outcome {
                    TraceOutcome::Ok => "ok",
                    TraceOutcome::Throttled => "throttled",
                    TraceOutcome::Failed => "failed",
                    TraceOutcome::Faulted => "faulted",
                    TraceOutcome::TimedOut => "timed_out",
                },
                r.bytes_up,
                r.bytes_down
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, class: OpClass) -> TraceRecord {
        TraceRecord {
            issued: SimTime(t),
            completed: SimTime(t + 1_000_000),
            actor: 0,
            class,
            outcome: TraceOutcome::Ok,
            bytes_up: 10,
            bytes_down: 20,
        }
    }

    #[test]
    fn capacity_bounds_recording() {
        let mut t = Tracer::with_capacity(2);
        for i in 0..5 {
            t.record(rec(i, OpClass::QueuePut));
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn latency_is_completion_minus_issue() {
        let r = rec(5, OpClass::TableQuery);
        assert_eq!(r.latency(), std::time::Duration::from_millis(1));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Tracer::with_capacity(10);
        t.record(rec(0, OpClass::QueuePut));
        t.record(rec(1, OpClass::BlobDownload));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("issued_s,"));
        assert!(lines[1].contains("queue.put"));
        assert!(lines[2].contains("blob.download"));
        assert!(lines[1].contains(",ok,"));
    }
}
