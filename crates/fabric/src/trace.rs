//! Per-operation tracing with phase-level span attribution.
//!
//! When enabled, the cluster records one [`TraceRecord`] per submitted
//! operation — issue/completion virtual timestamps, class, actor, payload
//! sizes, outcome — plus a [`PhaseBreadcrumb`]: the operation's end-to-end
//! latency split across the pipeline stages it crossed (client send,
//! partition queue wait, service, replica sync, NIC transfer, …). The
//! breadcrumb segments partition the `[issued, completed]` interval
//! exactly, so per-phase sums reconcile with end-to-end latency by
//! construction.
//!
//! Two sinks are available and composable:
//! - a bounded record buffer ([`Tracer::with_capacity`]) keeping raw
//!   records for CSV export and debugging, and
//! - a streaming [`PhaseAggregate`] ([`Tracer::aggregate_only`]) folding
//!   every record into per-class/per-phase [`Histogram`]s — O(1) memory in
//!   the number of operations, suitable for full-ladder runs.

use azsim_core::stats::Histogram;
use azsim_core::SimTime;
use azsim_storage::OpClass;
use std::time::Duration;

/// A pipeline stage of one simulated storage operation.
///
/// `RetryBackoff` is client-side (the waits a retry policy inserts between
/// attempts) and therefore never appears in server-side trace records; it
/// is fed into a [`PhaseAggregate`] by the client harness via
/// [`PhaseAggregate::record_retry`]. All other phases are measured by the
/// cluster itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Client-side wait inserted by a retry policy between attempts.
    RetryBackoff,
    /// Client NIC uplink, frontend round-trip and uplink pipes — everything
    /// before the request joins the partition-server FIFO.
    ClientSend,
    /// Wait in the partition-server FIFO before service begins.
    QueueWait,
    /// Service occupancy, per-class latency, and modelled quirks (e.g. the
    /// 16 KB GetMessage anomaly).
    Service,
    /// Intra-stamp replication and state-sync, including injected stalls.
    ReplicaSync,
    /// Downlink pipes, account egress and client NIC transfer.
    Transfer,
    /// Fast-reject round trip (throttle or injected fault) or the elapsed
    /// timeout of a dropped request.
    Rejection,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 7;

    /// All phases, in display order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::RetryBackoff,
        Phase::ClientSend,
        Phase::QueueWait,
        Phase::Service,
        Phase::ReplicaSync,
        Phase::Transfer,
        Phase::Rejection,
    ];

    /// Dense index (matches `ALL` order).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case label used in CSV, JSON and Prometheus exports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::RetryBackoff => "retry_backoff",
            Phase::ClientSend => "client_send",
            Phase::QueueWait => "queue_wait",
            Phase::Service => "service",
            Phase::ReplicaSync => "replica_sync",
            Phase::Transfer => "transfer",
            Phase::Rejection => "rejection",
        }
    }
}

/// Per-phase durations of one operation, in integer nanoseconds.
///
/// The server-side segments sum exactly to `completed - issued` for the
/// record that carries them (virtual time is integer nanoseconds, so there
/// is no rounding).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseBreadcrumb {
    nanos: [u64; Phase::COUNT],
}

impl PhaseBreadcrumb {
    /// An all-zero breadcrumb.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a duration to one phase.
    pub fn add(&mut self, phase: Phase, d: Duration) {
        self.nanos[phase.index()] += d.as_nanos() as u64;
    }

    /// The accumulated duration of one phase.
    pub fn get(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.nanos[phase.index()])
    }

    /// Sum over all phases.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos.iter().sum())
    }

    /// Iterate `(phase, duration)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, Duration)> + '_ {
        Phase::ALL
            .iter()
            .map(|&p| (p, Duration::from_nanos(self.nanos[p.index()])))
    }
}

/// One traced operation.
#[derive(Clone, Copy, Debug)]
pub struct TraceRecord {
    /// Virtual time the request arrived at the cluster.
    pub issued: SimTime,
    /// Virtual completion time.
    pub completed: SimTime,
    /// Issuing role instance.
    pub actor: usize,
    /// Operation class.
    pub class: OpClass,
    /// Operation outcome.
    pub outcome: TraceOutcome,
    /// Payload bytes client → server.
    pub bytes_up: u64,
    /// Payload bytes server → client.
    pub bytes_down: u64,
    /// Where the latency went, stage by stage.
    pub phases: PhaseBreadcrumb,
}

/// How a traced operation ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Completed successfully.
    Ok,
    /// Rejected by a throttle (`ServerBusy`).
    Throttled,
    /// Failed with a semantic error.
    Failed,
    /// Rejected by an injected server fault (`ServerFault`).
    Faulted,
    /// Dropped by fault injection; the client observed a timeout.
    TimedOut,
}

impl TraceOutcome {
    /// Number of outcomes.
    pub const COUNT: usize = 5;

    /// All outcomes, in display order.
    pub const ALL: [TraceOutcome; TraceOutcome::COUNT] = [
        TraceOutcome::Ok,
        TraceOutcome::Throttled,
        TraceOutcome::Failed,
        TraceOutcome::Faulted,
        TraceOutcome::TimedOut,
    ];

    /// Dense index (matches `ALL` order).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case label used in CSV, JSON and Prometheus exports.
    pub fn label(self) -> &'static str {
        match self {
            TraceOutcome::Ok => "ok",
            TraceOutcome::Throttled => "throttled",
            TraceOutcome::Failed => "failed",
            TraceOutcome::Faulted => "faulted",
            TraceOutcome::TimedOut => "timed_out",
        }
    }
}

impl TraceRecord {
    /// Operation latency.
    pub fn latency(&self) -> Duration {
        self.completed.saturating_since(self.issued)
    }
}

/// Streaming per-class, per-phase latency aggregation.
///
/// Folds trace records into [`Histogram`]s as they are produced, so memory
/// is bounded by `classes × phases × histogram buckets` regardless of how
/// many operations run. Mergeable across ladder points (deterministic when
/// merged in a fixed order).
#[derive(Clone, Debug, Default)]
pub struct PhaseAggregate {
    classes: Vec<Option<Box<ClassPhaseStats>>>,
}

/// Aggregated latency distributions for one operation class.
#[derive(Clone, Debug)]
pub struct ClassPhaseStats {
    end_to_end: Histogram,
    phases: [Histogram; Phase::COUNT],
    outcomes: [u64; TraceOutcome::COUNT],
}

impl Default for ClassPhaseStats {
    fn default() -> Self {
        ClassPhaseStats {
            end_to_end: Histogram::new(),
            phases: std::array::from_fn(|_| Histogram::new()),
            outcomes: [0; TraceOutcome::COUNT],
        }
    }
}

impl ClassPhaseStats {
    /// End-to-end latency distribution (all outcomes).
    pub fn end_to_end(&self) -> &Histogram {
        &self.end_to_end
    }

    /// Latency distribution of one phase. Only operations that actually
    /// crossed the phase (non-zero duration) are recorded, so quantiles
    /// describe the phase when it happens; sums still reconcile because
    /// skipped crossings contribute zero.
    pub fn phase(&self, phase: Phase) -> &Histogram {
        &self.phases[phase.index()]
    }

    /// How many records ended with the given outcome.
    pub fn outcome_count(&self, outcome: TraceOutcome) -> u64 {
        self.outcomes[outcome.index()]
    }

    /// Sum of the server-side phase sums (everything except the
    /// client-side `RetryBackoff`), for reconciliation against
    /// [`ClassPhaseStats::end_to_end`].
    pub fn phase_sum(&self) -> f64 {
        Phase::ALL
            .iter()
            .filter(|&&p| p != Phase::RetryBackoff)
            .map(|&p| self.phases[p.index()].sum())
            .sum()
    }

    fn merge(&mut self, other: &ClassPhaseStats) {
        self.end_to_end.merge(&other.end_to_end);
        for (a, b) in self.phases.iter_mut().zip(&other.phases) {
            a.merge(b);
        }
        for (a, &b) in self.outcomes.iter_mut().zip(&other.outcomes) {
            *a += b;
        }
    }
}

impl PhaseAggregate {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    fn class_mut(&mut self, class: OpClass) -> &mut ClassPhaseStats {
        let i = class.index();
        if self.classes.len() <= i {
            self.classes.resize(i + 1, None);
        }
        self.classes[i].get_or_insert_with(Default::default)
    }

    /// Fold one trace record into the aggregate.
    pub fn record(&mut self, r: &TraceRecord) {
        let latency = r.latency().as_secs_f64();
        let stats = self.class_mut(r.class);
        stats.end_to_end.record(latency);
        stats.outcomes[r.outcome.index()] += 1;
        for (phase, d) in r.phases.iter() {
            if !d.is_zero() {
                stats.phases[phase.index()].record(d.as_secs_f64());
            }
        }
    }

    /// Fold one client-side retry/backoff wait into the aggregate.
    pub fn record_retry(&mut self, class: OpClass, wait: Duration) {
        if !wait.is_zero() {
            self.class_mut(class).phases[Phase::RetryBackoff.index()].record(wait.as_secs_f64());
        }
    }

    /// Merge another aggregate into this one.
    pub fn merge(&mut self, other: &PhaseAggregate) {
        if self.classes.len() < other.classes.len() {
            self.classes.resize(other.classes.len(), None);
        }
        for (i, theirs) in other.classes.iter().enumerate() {
            if let Some(theirs) = theirs {
                self.classes[i]
                    .get_or_insert_with(Default::default)
                    .merge(theirs);
            }
        }
    }

    /// Stats for one class, if any record of that class was seen.
    pub fn class(&self, class: OpClass) -> Option<&ClassPhaseStats> {
        self.classes.get(class.index()).and_then(|c| c.as_deref())
    }

    /// Iterate `(class, stats)` pairs in fixed [`OpClass::index`] order.
    pub fn iter(&self) -> impl Iterator<Item = (OpClass, &ClassPhaseStats)> {
        OpClass::ALL
            .iter()
            .filter_map(|&c| self.class(c).map(|s| (c, s)))
    }

    /// Total records folded in (end-to-end observations across classes).
    pub fn total_records(&self) -> u64 {
        self.classes
            .iter()
            .flatten()
            .map(|c| c.end_to_end.count())
            .sum()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total_records() == 0
    }
}

/// A trace sink (disabled by default). Combines an optional bounded record
/// buffer with an optional streaming [`PhaseAggregate`].
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    records: Vec<TraceRecord>,
    capacity: usize,
    dropped: u64,
    aggregate: Option<Box<PhaseAggregate>>,
}

impl Tracer {
    /// A tracer that keeps at most `capacity` records (older operations
    /// are *not* evicted — the buffer stops recording and counts drops, so
    /// the retained prefix stays contiguous).
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            records: Vec::new(),
            capacity,
            dropped: 0,
            aggregate: None,
        }
    }

    /// A tracer that keeps no records at all and only streams into a
    /// [`PhaseAggregate`] — O(1) memory per operation, for full-ladder
    /// profiling runs.
    pub fn aggregate_only() -> Self {
        Tracer {
            records: Vec::new(),
            capacity: 0,
            dropped: 0,
            aggregate: Some(Box::default()),
        }
    }

    /// Enable streaming aggregation in addition to whatever record buffer
    /// is configured.
    pub fn enable_aggregation(&mut self) {
        self.aggregate.get_or_insert_with(Box::default);
    }

    /// Record one operation.
    pub fn record(&mut self, r: TraceRecord) {
        if let Some(agg) = &mut self.aggregate {
            agg.record(&r);
        }
        if self.capacity == 0 {
            return;
        }
        if self.records.len() < self.capacity {
            self.records.push(r);
        } else {
            self.dropped += 1;
        }
    }

    /// The retained records, in completion-processing order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Operations that arrived after the record buffer filled (always 0 in
    /// aggregate-only mode, where no buffer exists to overflow).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The streaming aggregate, if aggregation is enabled.
    pub fn phase_stats(&self) -> Option<&PhaseAggregate> {
        self.aggregate.as_deref()
    }

    /// Mutable access to the streaming aggregate (used by client harnesses
    /// to fold in retry-phase spans).
    pub fn phase_stats_mut(&mut self) -> Option<&mut PhaseAggregate> {
        self.aggregate.as_deref_mut()
    }

    /// Render as CSV: one row per retained record, end-to-end fields first,
    /// then one `<phase>_ms` column per [`Phase`] in display order.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("issued_s,completed_s,latency_ms,actor,class,outcome,bytes_up,bytes_down");
        for p in Phase::ALL {
            out.push_str(&format!(",{}_ms", p.label()));
        }
        out.push('\n');
        for r in &self.records {
            out.push_str(&format!(
                "{:.9},{:.9},{:.6},{},{},{},{},{}",
                r.issued.as_secs_f64(),
                r.completed.as_secs_f64(),
                r.latency().as_secs_f64() * 1e3,
                r.actor,
                r.class.label(),
                r.outcome.label(),
                r.bytes_up,
                r.bytes_down
            ));
            for (_, d) in r.phases.iter() {
                out.push_str(&format!(",{:.6}", d.as_secs_f64() * 1e3));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, class: OpClass) -> TraceRecord {
        let mut phases = PhaseBreadcrumb::new();
        phases.add(Phase::ClientSend, Duration::from_nanos(250_000));
        phases.add(Phase::QueueWait, Duration::from_nanos(100_000));
        phases.add(Phase::Service, Duration::from_nanos(400_000));
        phases.add(Phase::ReplicaSync, Duration::from_nanos(150_000));
        phases.add(Phase::Transfer, Duration::from_nanos(100_000));
        TraceRecord {
            issued: SimTime(t),
            completed: SimTime(t + 1_000_000),
            actor: 0,
            class,
            outcome: TraceOutcome::Ok,
            bytes_up: 10,
            bytes_down: 20,
            phases,
        }
    }

    #[test]
    fn capacity_bounds_recording() {
        let mut t = Tracer::with_capacity(2);
        for i in 0..5 {
            t.record(rec(i, OpClass::QueuePut));
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn latency_is_completion_minus_issue() {
        let r = rec(5, OpClass::TableQuery);
        assert_eq!(r.latency(), Duration::from_millis(1));
    }

    #[test]
    fn breadcrumb_partitions_latency() {
        let r = rec(0, OpClass::QueuePut);
        assert_eq!(r.phases.total(), r.latency());
        assert_eq!(r.phases.get(Phase::Service), Duration::from_nanos(400_000));
        assert_eq!(r.phases.get(Phase::RetryBackoff), Duration::ZERO);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Tracer::with_capacity(10);
        t.record(rec(0, OpClass::QueuePut));
        t.record(rec(1, OpClass::BlobDownload));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("issued_s,"));
        for p in Phase::ALL {
            assert!(lines[0].contains(&format!("{}_ms", p.label())), "{p:?}");
        }
        assert!(lines[1].contains("queue.put"));
        assert!(lines[2].contains("blob.download"));
        assert!(lines[1].contains(",ok,"));
        // Service phase of 0.4 ms appears as a fractional-ms column.
        assert!(lines[1].contains("0.400000"));
    }

    #[test]
    fn aggregate_only_keeps_no_records() {
        let mut t = Tracer::aggregate_only();
        for i in 0..100 {
            t.record(rec(i, OpClass::QueuePut));
        }
        assert!(t.records().is_empty());
        assert_eq!(t.dropped(), 0);
        let agg = t.phase_stats().unwrap();
        assert_eq!(agg.total_records(), 100);
        let stats = agg.class(OpClass::QueuePut).unwrap();
        assert_eq!(stats.end_to_end().count(), 100);
        assert_eq!(stats.outcome_count(TraceOutcome::Ok), 100);
        assert_eq!(stats.phase(Phase::Service).count(), 100);
        // Per-phase sums reconcile with end-to-end sums exactly here: every
        // breadcrumb partitions its record's latency.
        assert!((stats.phase_sum() - stats.end_to_end().sum()).abs() < 1e-9);
    }

    #[test]
    fn aggregate_merge_matches_single_stream() {
        let mut a = PhaseAggregate::new();
        let mut b = PhaseAggregate::new();
        let mut whole = PhaseAggregate::new();
        for i in 0..50 {
            let r = rec(i, OpClass::BlobUploadSingle);
            whole.record(&r);
            if i % 2 == 0 {
                a.record(&r)
            } else {
                b.record(&r)
            }
        }
        a.merge(&b);
        assert_eq!(a.total_records(), whole.total_records());
        let (ac, wc) = (
            a.class(OpClass::BlobUploadSingle).unwrap(),
            whole.class(OpClass::BlobUploadSingle).unwrap(),
        );
        assert_eq!(ac.end_to_end().quantile(0.5), wc.end_to_end().quantile(0.5));
        assert_eq!(ac.outcome_count(TraceOutcome::Ok), 50);
    }

    #[test]
    fn retry_spans_land_in_retry_phase() {
        let mut agg = PhaseAggregate::new();
        agg.record_retry(OpClass::QueueGet, Duration::from_millis(3));
        agg.record_retry(OpClass::QueueGet, Duration::from_millis(5));
        agg.record_retry(OpClass::QueueGet, Duration::ZERO); // ignored
        let stats = agg.class(OpClass::QueueGet).unwrap();
        let retry = stats.phase(Phase::RetryBackoff);
        assert_eq!(retry.count(), 2);
        assert!((retry.sum() - 0.008).abs() < 1e-9);
        // Retry waits are client-side: excluded from server reconciliation.
        assert_eq!(stats.phase_sum(), 0.0);
    }
}
