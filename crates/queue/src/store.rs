//! The account-level queue namespace.

use crate::queue::SimQueue;
use azsim_core::SimTime;
use azsim_storage::message::{MessageId, PeekedMessage, PopReceipt};
use azsim_storage::{QueueMessage, StorageError, StorageResult};
use bytes::Bytes;
use std::collections::HashMap;
use std::time::Duration;

/// All queue state of one storage account. "A storage account can have
/// unlimited number of uniquely named queues" (paper §IV-B).
#[derive(Clone, Debug)]
pub struct QueueStore {
    queues: HashMap<String, SimQueue>,
    seed: u64,
    fifo_fuzz: f64,
}

impl QueueStore {
    /// Create a store whose queues use deterministic seeds derived from
    /// `seed` and the configured FIFO fuzz probability.
    pub fn new(seed: u64, fifo_fuzz: f64) -> Self {
        QueueStore {
            queues: HashMap::new(),
            seed,
            fifo_fuzz,
        }
    }

    /// Create a queue; idempotent (`CreateIfNotExist` semantics).
    pub fn create_queue(&mut self, name: &str) -> StorageResult<()> {
        if !self.queues.contains_key(name) {
            // Seed each queue from its name so placement of randomness is
            // independent of creation order.
            let qseed = self.seed
                ^ azsim_storage::PartitionKey::Queue {
                    queue: name.to_owned(),
                }
                .stable_hash();
            self.queues
                .insert(name.to_owned(), SimQueue::new(qseed, self.fifo_fuzz));
        }
        Ok(())
    }

    /// Delete a queue and all its messages.
    pub fn delete_queue(&mut self, name: &str) -> StorageResult<()> {
        self.queues
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StorageError::QueueNotFound(name.to_owned()))
    }

    /// Whether a queue exists.
    pub fn queue_exists(&self, name: &str) -> bool {
        self.queues.contains_key(name)
    }

    fn queue_mut(&mut self, name: &str) -> StorageResult<&mut SimQueue> {
        self.queues
            .get_mut(name)
            .ok_or_else(|| StorageError::QueueNotFound(name.to_owned()))
    }

    /// Enqueue a message.
    pub fn put(
        &mut self,
        now: SimTime,
        name: &str,
        data: Bytes,
        ttl: Option<Duration>,
    ) -> StorageResult<MessageId> {
        self.queue_mut(name)?.put(now, data, ttl)
    }

    /// Dequeue a message with a visibility timeout.
    pub fn get(
        &mut self,
        now: SimTime,
        name: &str,
        visibility: Duration,
    ) -> StorageResult<Option<QueueMessage>> {
        Ok(self.queue_mut(name)?.get(now, visibility))
    }

    /// Peek at the next visible message.
    pub fn peek(&mut self, now: SimTime, name: &str) -> StorageResult<Option<PeekedMessage>> {
        Ok(self.queue_mut(name)?.peek(now))
    }

    /// Delete a claimed message.
    pub fn delete_message(
        &mut self,
        name: &str,
        id: MessageId,
        receipt: PopReceipt,
    ) -> StorageResult<()> {
        self.queue_mut(name)?.delete(id, receipt)
    }

    /// Approximate message count.
    pub fn approximate_count(&mut self, now: SimTime, name: &str) -> StorageResult<usize> {
        Ok(self.queue_mut(name)?.approximate_count(now))
    }

    /// Remove every message from a queue.
    pub fn clear(&mut self, name: &str) -> StorageResult<usize> {
        Ok(self.queue_mut(name)?.clear())
    }

    /// Number of queues in the account.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Ground-truth audit of one queue's live messages at `now` (see
    /// [`SimQueue::audit`]).
    pub fn audit(
        &self,
        now: SimTime,
        name: &str,
    ) -> StorageResult<Vec<crate::queue::AuditedMessage>> {
        self.queues
            .get(name)
            .map(|q| q.audit(now))
            .ok_or_else(|| StorageError::QueueNotFound(name.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> QueueStore {
        QueueStore::new(1, 0.0)
    }

    #[test]
    fn create_is_idempotent_and_preserves_messages() {
        let mut s = store();
        s.create_queue("q").unwrap();
        s.put(SimTime::ZERO, "q", Bytes::from_static(b"m"), None)
            .unwrap();
        // Re-creating must NOT clear the queue.
        s.create_queue("q").unwrap();
        assert_eq!(s.approximate_count(SimTime::ZERO, "q").unwrap(), 1);
    }

    #[test]
    fn operations_on_missing_queue_fail() {
        let mut s = store();
        assert!(matches!(
            s.put(SimTime::ZERO, "nope", Bytes::new(), None),
            Err(StorageError::QueueNotFound(_))
        ));
        assert!(matches!(
            s.get(SimTime::ZERO, "nope", Duration::from_secs(1)),
            Err(StorageError::QueueNotFound(_))
        ));
        assert!(matches!(
            s.delete_queue("nope"),
            Err(StorageError::QueueNotFound(_))
        ));
    }

    #[test]
    fn delete_queue_drops_messages() {
        let mut s = store();
        s.create_queue("q").unwrap();
        s.put(SimTime::ZERO, "q", Bytes::from_static(b"m"), None)
            .unwrap();
        s.delete_queue("q").unwrap();
        assert!(!s.queue_exists("q"));
        // Re-created queue is empty.
        s.create_queue("q").unwrap();
        assert_eq!(s.approximate_count(SimTime::ZERO, "q").unwrap(), 0);
    }

    #[test]
    fn queues_are_independent() {
        let mut s = store();
        s.create_queue("a").unwrap();
        s.create_queue("b").unwrap();
        s.put(SimTime::ZERO, "a", Bytes::from_static(b"ma"), None)
            .unwrap();
        assert_eq!(s.approximate_count(SimTime::ZERO, "a").unwrap(), 1);
        assert_eq!(s.approximate_count(SimTime::ZERO, "b").unwrap(), 0);
        let m = s
            .get(SimTime::ZERO, "a", Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(m.data, Bytes::from_static(b"ma"));
        assert!(s
            .get(SimTime::ZERO, "b", Duration::from_secs(1))
            .unwrap()
            .is_none());
        assert_eq!(s.queue_count(), 2);
    }
}
