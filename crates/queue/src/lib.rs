//! # azsim-queue — the simulated Windows Azure Queue storage service
//!
//! Queues are the inter-role communication and coordination primitive of
//! the Azure platform (paper §IV-B): a shared task pool with built-in fault
//! tolerance. Distinguishing features faithfully modeled here:
//!
//! * **FIFO is not guaranteed.** Delivery order may deviate from insertion
//!   order (configurable deterministic fuzz), which is why the paper warns
//!   against using an ordinary task queue to signal termination and
//!   recommends a dedicated termination-indicator queue.
//! * **Visibility timeout.** `GetMessage` hides a message for a period; if
//!   the consumer crashes without deleting it, the message *reappears* —
//!   the fault-tolerance mechanism bag-of-tasks applications rely on.
//! * **Pop receipts.** Deleting a message requires the receipt from the
//!   dequeue that claimed it; a stale receipt (message re-delivered) fails.
//! * **TTL.** Messages older than 7 days vanish (2 hours under pre-2011
//!   APIs — the restriction that made Azure problematic for long-running
//!   scientific applications).
//! * **48 KB usable payload** out of the 64 KB raw message size.
//!
//! Timing (the 500 msg/s per-queue target, replication costs that make
//! Peek < Put < Get) lives in `azsim-fabric`.

pub mod queue;
pub mod store;

pub use queue::{AuditedMessage, SimQueue};
pub use store::QueueStore;
