//! A single simulated Azure queue.

use azsim_core::rng::stream_rng;
use azsim_core::SimTime;
use azsim_storage::limits::{MAX_MESSAGE_PAYLOAD, MESSAGE_TTL_SECS};
use azsim_storage::message::{MessageId, PeekedMessage, PopReceipt};
use azsim_storage::{QueueMessage, StorageError, StorageResult};
use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::time::Duration;

#[derive(Clone, Debug)]
struct Stored {
    data: Bytes,
    insertion: SimTime,
    expiry: SimTime,
    next_visible: SimTime,
    dequeue_count: u32,
    current_receipt: Option<PopReceipt>,
}

/// One queue: messages with visibility timeouts, pop receipts, TTLs and
/// deliberately non-guaranteed FIFO order.
///
/// Internally messages live in a map plus two delivery structures — a
/// `ready` list of (approximately insertion-ordered) visible candidates and
/// a `parked` heap of invisible messages keyed by reappearance time — so
/// that `get`/`peek` are amortized O(log n) even when the benchmark leaves
/// tens of thousands of invisible messages at the front of the queue.
#[derive(Clone, Debug)]
pub struct SimQueue {
    messages: HashMap<u64, Stored>,
    ready: VecDeque<u64>,
    parked: BinaryHeap<Reverse<(u64, u64)>>, // (next_visible nanos, id)
    next_id: u64,
    next_receipt: u64,
    fifo_fuzz: f64,
    rng: SmallRng,
    total_put: u64,
    total_got: u64,
    total_deleted: u64,
    reappeared: u64,
}

impl SimQueue {
    /// Create a queue. `fifo_fuzz` is the probability that a dequeue skips
    /// the oldest visible message in favour of the next one, modelling the
    /// service's lack of a FIFO guarantee deterministically (seeded).
    pub fn new(seed: u64, fifo_fuzz: f64) -> Self {
        SimQueue {
            messages: HashMap::new(),
            ready: VecDeque::new(),
            parked: BinaryHeap::new(),
            next_id: 0,
            next_receipt: 0,
            fifo_fuzz,
            rng: stream_rng(seed, 0xD0_0D),
            total_put: 0,
            total_got: 0,
            total_deleted: 0,
            reappeared: 0,
        }
    }

    /// Enqueue a message. Payload must fit in the 48 KB usable size; the
    /// TTL is capped at the service's 7 days.
    pub fn put(
        &mut self,
        now: SimTime,
        data: Bytes,
        ttl: Option<Duration>,
    ) -> StorageResult<MessageId> {
        if data.len() as u64 > MAX_MESSAGE_PAYLOAD {
            return Err(StorageError::MessageTooLarge {
                size: data.len() as u64,
            });
        }
        let max_ttl = Duration::from_secs(MESSAGE_TTL_SECS);
        let ttl = ttl.unwrap_or(max_ttl).min(max_ttl);
        let id = self.next_id;
        self.next_id += 1;
        self.messages.insert(
            id,
            Stored {
                data,
                insertion: now,
                expiry: now + ttl,
                next_visible: now,
                dequeue_count: 0,
                current_receipt: None,
            },
        );
        self.ready.push_back(id);
        self.total_put += 1;
        Ok(MessageId(id))
    }

    /// Move parked messages whose visibility timeout has elapsed back into
    /// the ready list; drop expired ones.
    fn promote(&mut self, now: SimTime) {
        while let Some(&Reverse((t, id))) = self.parked.peek() {
            if SimTime(t) > now {
                break;
            }
            self.parked.pop();
            let keep = match self.messages.get(&id) {
                // Only promote if this parking entry is still current.
                Some(m) if m.next_visible == SimTime(t) => {
                    if m.expiry <= now {
                        self.messages.remove(&id);
                        false
                    } else {
                        true
                    }
                }
                _ => false,
            };
            if keep {
                if self.messages[&id].dequeue_count > 0 {
                    self.reappeared += 1;
                }
                self.ready.push_back(id);
            }
        }
    }

    /// Pop the next valid visible candidate id from `ready`, skipping stale
    /// entries (deleted, re-parked or expired messages).
    fn pop_candidate(&mut self, now: SimTime) -> Option<u64> {
        while let Some(id) = self.ready.pop_front() {
            match self.messages.get(&id) {
                Some(m) if m.next_visible <= now => {
                    if m.expiry <= now {
                        self.messages.remove(&id);
                        continue;
                    }
                    return Some(id);
                }
                _ => continue, // stale: deleted or currently invisible
            }
        }
        None
    }

    /// Dequeue a message, making it invisible for `visibility`. Returns
    /// `None` when no visible message exists.
    pub fn get(&mut self, now: SimTime, visibility: Duration) -> Option<QueueMessage> {
        self.promote(now);
        let mut id = self.pop_candidate(now)?;
        // FIFO is not guaranteed: sometimes deliver the *second* oldest.
        if self.fifo_fuzz > 0.0 && self.rng.random::<f64>() < self.fifo_fuzz {
            if let Some(second) = self.pop_candidate(now) {
                self.ready.push_front(id);
                id = second;
            }
        }
        let receipt = PopReceipt(self.next_receipt);
        self.next_receipt += 1;
        let m = self.messages.get_mut(&id).expect("candidate vanished");
        m.dequeue_count += 1;
        m.next_visible = now + visibility;
        m.current_receipt = Some(receipt);
        self.parked.push(Reverse((m.next_visible.as_nanos(), id)));
        self.total_got += 1;
        Some(QueueMessage {
            id: MessageId(id),
            pop_receipt: receipt,
            data: m.data.clone(),
            dequeue_count: m.dequeue_count,
            insertion_time: m.insertion,
            next_visible: m.next_visible,
        })
    }

    /// Look at the next visible message without claiming it.
    pub fn peek(&mut self, now: SimTime) -> Option<PeekedMessage> {
        self.promote(now);
        let id = self.pop_candidate(now)?;
        // Peek does not consume: put the candidate back at the front.
        self.ready.push_front(id);
        let m = &self.messages[&id];
        Some(PeekedMessage {
            id: MessageId(id),
            data: m.data.clone(),
            dequeue_count: m.dequeue_count,
            insertion_time: m.insertion,
        })
    }

    /// Delete a message using the receipt from the dequeue that claimed it.
    /// Fails with [`StorageError::PopReceiptMismatch`] if the message was
    /// re-delivered in the meantime (or no longer exists).
    pub fn delete(&mut self, id: MessageId, receipt: PopReceipt) -> StorageResult<()> {
        match self.messages.get(&id.0) {
            Some(m) if m.current_receipt == Some(receipt) => {
                self.messages.remove(&id.0);
                self.total_deleted += 1;
                Ok(())
            }
            _ => Err(StorageError::PopReceiptMismatch),
        }
    }

    /// Approximate message count (visible *and* invisible, like the real
    /// service's `ApproximateMessageCount`). Purges expired messages.
    pub fn approximate_count(&mut self, now: SimTime) -> usize {
        self.messages.retain(|_, m| m.expiry > now);
        self.messages.len()
    }

    /// Remove every message (the REST `Clear Messages` operation). Returns
    /// the number of messages dropped.
    pub fn clear(&mut self) -> usize {
        let n = self.messages.len();
        self.messages.clear();
        self.ready.clear();
        self.parked.clear();
        n
    }

    /// Lifetime counters `(put, got, deleted, reappeared)` for tests and
    /// fault-tolerance accounting.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.total_put,
            self.total_got,
            self.total_deleted,
            self.reappeared,
        )
    }

    /// Ground-truth snapshot of every message still held at `now` —
    /// visible, invisible or awaiting lazy expiry purge — sorted by id.
    /// Verification audits final queue state through this, so invariants
    /// are checkable even when messages are parked behind long visibility
    /// timeouts (liveness is not required).
    pub fn audit(&self, now: SimTime) -> Vec<AuditedMessage> {
        let mut out: Vec<AuditedMessage> = self
            .messages
            .iter()
            .filter(|(_, m)| m.expiry > now)
            .map(|(&id, m)| AuditedMessage {
                id: MessageId(id),
                data: m.data.clone(),
                dequeue_count: m.dequeue_count,
            })
            .collect();
        out.sort_by_key(|m| m.id.0);
        out
    }
}

/// One live message as seen by [`SimQueue::audit`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditedMessage {
    /// Service-assigned message id.
    pub id: MessageId,
    /// Message payload.
    pub data: Bytes,
    /// How many times the message has been claimed.
    pub dequeue_count: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> SimQueue {
        SimQueue::new(42, 0.0) // strict FIFO for deterministic assertions
    }

    fn payload(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    const VIS: Duration = Duration::from_secs(30);

    #[test]
    fn put_get_delete_roundtrip() {
        let mut queue = q();
        let t0 = SimTime::ZERO;
        queue.put(t0, payload("m1"), None).unwrap();
        let m = queue.get(t0, VIS).unwrap();
        assert_eq!(m.data, payload("m1"));
        assert_eq!(m.dequeue_count, 1);
        queue.delete(m.id, m.pop_receipt).unwrap();
        assert!(queue.get(t0, VIS).is_none());
        assert_eq!(queue.counters(), (1, 1, 1, 0));
    }

    #[test]
    fn got_message_is_invisible_until_timeout() {
        let mut queue = q();
        let t0 = SimTime::ZERO;
        queue.put(t0, payload("m"), None).unwrap();
        let m = queue.get(t0, VIS).unwrap();
        // Invisible to a second consumer right away and just before expiry.
        assert!(queue.get(t0, VIS).is_none());
        assert!(queue
            .get(t0 + (VIS - Duration::from_nanos(1)), VIS)
            .is_none());
        // Reappears at the timeout with an incremented dequeue count.
        let again = queue.get(t0 + VIS, VIS).unwrap();
        assert_eq!(again.id, m.id);
        assert_eq!(again.dequeue_count, 2);
        assert_ne!(again.pop_receipt, m.pop_receipt);
        assert_eq!(queue.counters().3, 1, "one reappearance recorded");
    }

    #[test]
    fn stale_pop_receipt_rejected_after_redelivery() {
        let mut queue = q();
        let t0 = SimTime::ZERO;
        queue.put(t0, payload("m"), None).unwrap();
        let first = queue.get(t0, Duration::from_secs(1)).unwrap();
        let second = queue.get(t0 + Duration::from_secs(1), VIS).unwrap();
        // The crashed consumer's receipt no longer works…
        assert_eq!(
            queue.delete(first.id, first.pop_receipt),
            Err(StorageError::PopReceiptMismatch)
        );
        // …but the current owner's does.
        queue.delete(second.id, second.pop_receipt).unwrap();
    }

    #[test]
    fn receipt_still_valid_if_reappeared_but_not_redelivered() {
        let mut queue = q();
        let t0 = SimTime::ZERO;
        queue.put(t0, payload("m"), None).unwrap();
        let m = queue.get(t0, Duration::from_secs(1)).unwrap();
        // Visibility elapsed but nobody re-dequeued: delete still succeeds
        // (matches the real service: receipts break on re-delivery).
        queue.delete(m.id, m.pop_receipt).unwrap();
    }

    #[test]
    fn peek_does_not_claim_or_advance() {
        let mut queue = q();
        let t0 = SimTime::ZERO;
        queue.put(t0, payload("a"), None).unwrap();
        queue.put(t0, payload("b"), None).unwrap();
        let p1 = queue.peek(t0).unwrap();
        let p2 = queue.peek(t0).unwrap();
        assert_eq!(p1.id, p2.id, "peek must not consume");
        assert_eq!(p1.dequeue_count, 0);
        // Get still sees the same front message.
        let g = queue.get(t0, VIS).unwrap();
        assert_eq!(g.id, p1.id);
    }

    #[test]
    fn empty_queue_returns_none() {
        let mut queue = q();
        assert!(queue.get(SimTime::ZERO, VIS).is_none());
        assert!(queue.peek(SimTime::ZERO).is_none());
        assert_eq!(queue.approximate_count(SimTime::ZERO), 0);
    }

    #[test]
    fn oversized_message_rejected() {
        let mut queue = q();
        let too_big = Bytes::from(vec![0u8; (MAX_MESSAGE_PAYLOAD + 1) as usize]);
        assert!(matches!(
            queue.put(SimTime::ZERO, too_big, None),
            Err(StorageError::MessageTooLarge { .. })
        ));
        // Exactly 48 KB fits.
        let max = Bytes::from(vec![0u8; MAX_MESSAGE_PAYLOAD as usize]);
        queue.put(SimTime::ZERO, max, None).unwrap();
    }

    #[test]
    fn ttl_expiry_removes_messages() {
        let mut queue = q();
        let t0 = SimTime::ZERO;
        queue
            .put(t0, payload("short"), Some(Duration::from_secs(10)))
            .unwrap();
        queue.put(t0, payload("long"), None).unwrap();
        assert_eq!(queue.approximate_count(t0), 2);
        let t1 = t0 + Duration::from_secs(11);
        // The short-TTL message is gone; the 7-day one remains.
        let m = queue.get(t1, VIS).unwrap();
        assert_eq!(m.data, payload("long"));
        assert!(queue.get(t1, VIS).is_none());
        assert_eq!(queue.approximate_count(t1), 1);
    }

    #[test]
    fn default_ttl_is_seven_days() {
        let mut queue = q();
        let t0 = SimTime::ZERO;
        queue.put(t0, payload("m"), None).unwrap();
        let just_before = t0 + Duration::from_secs(MESSAGE_TTL_SECS - 1);
        assert_eq!(queue.approximate_count(just_before), 1);
        let after = t0 + Duration::from_secs(MESSAGE_TTL_SECS);
        assert_eq!(queue.approximate_count(after), 0);
    }

    #[test]
    fn approximate_count_includes_invisible() {
        let mut queue = q();
        let t0 = SimTime::ZERO;
        for i in 0..5 {
            queue.put(t0, payload(&i.to_string()), None).unwrap();
        }
        let _ = queue.get(t0, VIS).unwrap();
        let _ = queue.get(t0, VIS).unwrap();
        // 2 invisible + 3 visible = 5 (this is what makes the paper's
        // queue-based barrier work).
        assert_eq!(queue.approximate_count(t0), 5);
    }

    #[test]
    fn fifo_when_fuzz_zero() {
        let mut queue = q();
        let t0 = SimTime::ZERO;
        for i in 0..10 {
            queue.put(t0, payload(&i.to_string()), None).unwrap();
        }
        for i in 0..10 {
            let m = queue.get(t0, VIS).unwrap();
            assert_eq!(m.data, payload(&i.to_string()));
        }
    }

    #[test]
    fn fifo_not_guaranteed_with_fuzz() {
        let mut queue = SimQueue::new(7, 1.0); // always skip the oldest
        let t0 = SimTime::ZERO;
        for i in 0..4 {
            queue.put(t0, payload(&i.to_string()), None).unwrap();
        }
        let first = queue.get(t0, VIS).unwrap();
        assert_eq!(first.data, payload("1"), "fuzz must reorder delivery");
        // The skipped message is still delivered eventually.
        let mut seen = vec![first.data.clone()];
        while let Some(m) = queue.get(t0, VIS) {
            seen.push(m.data.clone());
        }
        assert_eq!(seen.len(), 4, "no message may be lost");
    }

    #[test]
    fn zero_visibility_timeout_leaves_message_available() {
        let mut queue = q();
        let t0 = SimTime::ZERO;
        queue.put(t0, payload("m"), None).unwrap();
        let a = queue.get(t0, Duration::ZERO).unwrap();
        let b = queue.get(t0, VIS).unwrap();
        assert_eq!(a.id, b.id);
        assert_eq!(b.dequeue_count, 2);
    }

    proptest::proptest! {
        /// Message conservation: every put message is eventually either
        /// delivered-and-deleted or still countable; nothing is lost or
        /// duplicated when consumers behave (delete what they get).
        #[test]
        fn prop_no_loss_no_dup(
            n_msgs in 1usize..60,
            fuzz in 0.0f64..1.0,
            delete_mask in proptest::collection::vec(proptest::bool::ANY, 60)
        ) {
            let mut queue = SimQueue::new(99, fuzz);
            let t0 = SimTime::ZERO;
            for i in 0..n_msgs {
                queue.put(t0, Bytes::from(i.to_string()), None).unwrap();
            }
            let mut delivered = std::collections::HashSet::new();
            let mut deleted = 0usize;
            // Dequeue everything with a long visibility timeout.
            while let Some(m) = queue.get(t0, Duration::from_secs(3600)) {
                proptest::prop_assert!(delivered.insert(m.id),
                    "duplicate delivery within one visibility window");
                if delete_mask[deleted.min(59) % 60] {
                    queue.delete(m.id, m.pop_receipt).unwrap();
                    deleted += 1;
                }
            }
            proptest::prop_assert_eq!(delivered.len(), n_msgs);
            proptest::prop_assert_eq!(queue.approximate_count(t0), n_msgs - deleted);
        }
    }
}
