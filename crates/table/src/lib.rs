//! # azsim-table — the simulated Windows Azure Table storage service
//!
//! Semi-structured, schemaless storage (paper §IV-C): a table holds
//! entities of up to 1 MB and up to 255 properties each; the mandatory
//! `(PartitionKey, RowKey)` pair is the unique key and the only index.
//! Entities sharing a partition key live on one partition server — "a good
//! partitioning of a table can significantly boost the performance" —
//! and a single partition supports at most 500 entities/s (enforced by
//! `azsim-fabric`).
//!
//! Updates and deletes are conditional on ETags; the paper benchmarks the
//! unconditional flavour via the `*` wildcard.

pub mod batch;
pub mod store;

pub use batch::{BatchOp, BatchResult, MAX_BATCH_OPS};
pub use store::TableStore;
