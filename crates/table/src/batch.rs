//! Entity-group transactions (the Table service's atomic batch).
//!
//! The 2011 Table service supports *entity group transactions*: up to 100
//! operations against entities **of the same partition**, executed
//! atomically — either every operation applies or none does. The paper
//! benchmarks single-entity operations only; batches are provided as the
//! natural extension (and are what Twister4Azure-style applications use to
//! amortize the per-operation cost the paper measures in Figure 9).

use crate::store::TableStore;
use azsim_storage::{ETag, EtagCondition, StorageError, StorageResult, TableBatchOp};

/// Maximum operations in one entity-group transaction.
pub const MAX_BATCH_OPS: usize = 100;

/// The batch operation type (shared with the wire protocol).
pub type BatchOp = TableBatchOp;

fn row_key(op: &BatchOp) -> &str {
    match op {
        BatchOp::Insert(e) | BatchOp::Update(e, _) => &e.row_key,
        BatchOp::Delete { row, .. } => row,
    }
}

/// Result of one applied batch: the new ETag per mutating op (None for
/// deletes).
pub type BatchResult = Vec<Option<ETag>>;

impl TableStore {
    /// Execute an entity-group transaction atomically: all `ops` target
    /// `partition` of `table`; on any error nothing is applied.
    ///
    /// Rejections (mirroring the real service):
    /// * more than 100 operations,
    /// * an operation whose entity names a different partition key,
    /// * two operations addressing the same row key,
    /// * any constituent operation failing its own precondition.
    pub fn execute_batch(
        &mut self,
        table: &str,
        partition: &str,
        ops: &[BatchOp],
    ) -> StorageResult<BatchResult> {
        if ops.len() > MAX_BATCH_OPS {
            return Err(StorageError::TooManyProperties { count: ops.len() });
        }
        // Same-partition and distinct-row validation.
        let mut rows = std::collections::HashSet::new();
        for op in ops {
            if let BatchOp::Insert(e) | BatchOp::Update(e, _) = op {
                if e.partition_key != partition {
                    return Err(StorageError::PreconditionFailed);
                }
            }
            if !rows.insert(row_key(op).to_owned()) {
                return Err(StorageError::AlreadyExists);
            }
        }
        if !self.table_exists(table) {
            return Err(StorageError::TableNotFound(table.to_owned()));
        }
        // Dry-run against a snapshot for atomicity, then commit. Partition
        // snapshots are cheap (entities are refcounted `Bytes`).
        let snapshot = self.query_partition(table, partition)?;
        let mut tags = Vec::with_capacity(ops.len());
        let mut failed = None;
        for op in ops {
            let r = match op {
                BatchOp::Insert(e) => self.insert(table, e.clone()).map(Some),
                BatchOp::Update(e, cond) => self.update(table, e.clone(), *cond).map(Some),
                BatchOp::Delete { row, condition } => {
                    self.delete(table, partition, row, *condition).map(|_| None)
                }
            };
            match r {
                Ok(t) => tags.push(t),
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        if let Some(err) = failed {
            // Roll back: restore the partition snapshot.
            let current: Vec<String> = self
                .query_partition(table, partition)?
                .into_iter()
                .map(|(e, _)| e.row_key)
                .collect();
            for row in current {
                let _ = self.delete(table, partition, &row, EtagCondition::Any);
            }
            for (e, tag) in snapshot {
                self.restore(table, e, tag);
            }
            return Err(err);
        }
        Ok(tags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azsim_storage::{Entity, PropValue};

    fn store() -> TableStore {
        let mut s = TableStore::new();
        s.create_table("t").unwrap();
        s
    }

    fn e(rk: &str, v: i64) -> Entity {
        Entity::new("p", rk).with("v", PropValue::I64(v))
    }

    #[test]
    fn batch_applies_all_ops_atomically() {
        let mut s = store();
        s.insert("t", e("existing", 1)).unwrap();
        let tags = s
            .execute_batch(
                "t",
                "p",
                &[
                    BatchOp::Insert(e("new1", 10)),
                    BatchOp::Insert(e("new2", 20)),
                    BatchOp::Update(e("existing", 99), EtagCondition::Any),
                ],
            )
            .unwrap();
        assert_eq!(tags.len(), 3);
        assert!(tags.iter().all(|t| t.is_some()));
        assert_eq!(s.entity_count("t").unwrap(), 3);
        let (got, _) = s.query("t", "p", "existing").unwrap().unwrap();
        assert_eq!(got.properties["v"], PropValue::I64(99));
    }

    #[test]
    fn failed_batch_rolls_back_everything() {
        let mut s = store();
        s.insert("t", e("a", 1)).unwrap();
        let err = s
            .execute_batch(
                "t",
                "p",
                &[
                    BatchOp::Insert(e("b", 2)),                     // would succeed
                    BatchOp::Update(e("a", 3), EtagCondition::Any), // would succeed
                    BatchOp::Insert(e("a", 4)),                     // duplicate → fails
                ],
            )
            .unwrap_err();
        assert_eq!(err, StorageError::AlreadyExists);
        // Nothing applied: b absent, a unmodified.
        assert_eq!(s.entity_count("t").unwrap(), 1);
        let (got, _) = s.query("t", "p", "a").unwrap().unwrap();
        assert_eq!(got.properties["v"], PropValue::I64(1));
    }

    #[test]
    fn rollback_preserves_etags() {
        let mut s = store();
        let tag = s.insert("t", e("a", 1)).unwrap();
        let _ = s.execute_batch(
            "t",
            "p",
            &[
                BatchOp::Update(e("a", 2), EtagCondition::Any),
                BatchOp::Delete {
                    row: "missing".into(),
                    condition: EtagCondition::Any,
                },
            ],
        );
        // The pre-batch tag still matches after rollback.
        s.update("t", e("a", 5), EtagCondition::Match(tag)).unwrap();
    }

    #[test]
    fn cross_partition_batch_rejected() {
        let mut s = store();
        let err = s
            .execute_batch(
                "t",
                "p",
                &[BatchOp::Insert(
                    Entity::new("other", "r").with("v", PropValue::I64(1)),
                )],
            )
            .unwrap_err();
        assert_eq!(err, StorageError::PreconditionFailed);
    }

    #[test]
    fn duplicate_rows_in_batch_rejected() {
        let mut s = store();
        let err = s
            .execute_batch(
                "t",
                "p",
                &[
                    BatchOp::Insert(e("x", 1)),
                    BatchOp::Update(e("x", 2), EtagCondition::Any),
                ],
            )
            .unwrap_err();
        assert_eq!(err, StorageError::AlreadyExists);
        assert_eq!(s.entity_count("t").unwrap(), 0);
    }

    #[test]
    fn oversized_batch_rejected() {
        let mut s = store();
        let ops: Vec<BatchOp> = (0..MAX_BATCH_OPS + 1)
            .map(|i| BatchOp::Insert(e(&format!("r{i}"), i as i64)))
            .collect();
        assert!(s.execute_batch("t", "p", &ops).is_err());
        assert_eq!(s.entity_count("t").unwrap(), 0);
    }

    #[test]
    fn batch_deletes_work() {
        let mut s = store();
        s.insert("t", e("a", 1)).unwrap();
        s.insert("t", e("b", 2)).unwrap();
        let tags = s
            .execute_batch(
                "t",
                "p",
                &[
                    BatchOp::Delete {
                        row: "a".into(),
                        condition: EtagCondition::Any,
                    },
                    BatchOp::Insert(e("c", 3)),
                ],
            )
            .unwrap();
        assert_eq!(tags[0], None);
        assert!(tags[1].is_some());
        assert!(s.query("t", "p", "a").unwrap().is_none());
        assert!(s.query("t", "p", "c").unwrap().is_some());
    }
}
