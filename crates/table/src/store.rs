//! The account-level table namespace and entity CRUD.

use azsim_storage::limits::{MAX_ENTITY_PROPERTIES, MAX_ENTITY_SIZE};
use azsim_storage::{ETag, Entity, EtagCondition, StorageError, StorageResult};
use std::collections::{BTreeMap, HashMap};

type Key = (String, String); // (PartitionKey, RowKey)

/// All table state of one storage account.
///
/// Entities are kept in a `BTreeMap` ordered by `(PartitionKey, RowKey)` so
/// partition scans return deterministic row-key order, mirroring the real
/// service's clustered index.
#[derive(Clone, Debug, Default)]
pub struct TableStore {
    tables: HashMap<String, BTreeMap<Key, (Entity, ETag)>>,
    tag_counter: u64,
}

impl TableStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a table; idempotent.
    pub fn create_table(&mut self, name: &str) -> StorageResult<()> {
        self.tables.entry(name.to_owned()).or_default();
        Ok(())
    }

    /// Delete a table and all its entities.
    pub fn delete_table(&mut self, name: &str) -> StorageResult<()> {
        self.tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StorageError::TableNotFound(name.to_owned()))
    }

    /// Whether a table exists.
    pub fn table_exists(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    fn table(&self, name: &str) -> StorageResult<&BTreeMap<Key, (Entity, ETag)>> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::TableNotFound(name.to_owned()))
    }

    fn table_mut(&mut self, name: &str) -> StorageResult<&mut BTreeMap<Key, (Entity, ETag)>> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StorageError::TableNotFound(name.to_owned()))
    }

    fn validate(entity: &Entity) -> StorageResult<()> {
        let size = entity.size();
        if size > MAX_ENTITY_SIZE {
            return Err(StorageError::EntityTooLarge { size });
        }
        if entity.property_count() > MAX_ENTITY_PROPERTIES {
            return Err(StorageError::TooManyProperties {
                count: entity.property_count(),
            });
        }
        Ok(())
    }

    fn fresh_tag(&mut self) -> ETag {
        self.tag_counter += 1;
        ETag(self.tag_counter)
    }

    /// Insert a new entity; fails with `AlreadyExists` on a duplicate key.
    pub fn insert(&mut self, table: &str, entity: Entity) -> StorageResult<ETag> {
        Self::validate(&entity)?;
        let tag = self.fresh_tag();
        let t = self.table_mut(table)?;
        let key = (entity.partition_key.clone(), entity.row_key.clone());
        if t.contains_key(&key) {
            return Err(StorageError::AlreadyExists);
        }
        t.insert(key, (entity, tag));
        Ok(tag)
    }

    /// Point query by key pair. `Ok(None)` on a miss.
    pub fn query(
        &self,
        table: &str,
        partition: &str,
        row: &str,
    ) -> StorageResult<Option<(Entity, ETag)>> {
        Ok(self
            .table(table)?
            .get(&(partition.to_owned(), row.to_owned()))
            .cloned())
    }

    /// All entities of one partition, in row-key order.
    pub fn query_partition(
        &self,
        table: &str,
        partition: &str,
    ) -> StorageResult<Vec<(Entity, ETag)>> {
        let t = self.table(table)?;
        let lo = (partition.to_owned(), String::new());
        Ok(t.range(lo..)
            .take_while(|((pk, _), _)| pk == partition)
            .map(|(_, v)| v.clone())
            .collect())
    }

    /// Replace an existing entity's properties subject to an ETag
    /// condition; returns the new tag.
    pub fn update(
        &mut self,
        table: &str,
        entity: Entity,
        condition: EtagCondition,
    ) -> StorageResult<ETag> {
        Self::validate(&entity)?;
        let tag = self.fresh_tag();
        let t = self.table_mut(table)?;
        let key = (entity.partition_key.clone(), entity.row_key.clone());
        match t.get_mut(&key) {
            None => Err(StorageError::EntityNotFound),
            Some((stored, cur)) => {
                if !condition.admits(*cur) {
                    return Err(StorageError::PreconditionFailed);
                }
                *stored = entity;
                *cur = tag;
                Ok(tag)
            }
        }
    }

    /// Delete an entity subject to an ETag condition.
    pub fn delete(
        &mut self,
        table: &str,
        partition: &str,
        row: &str,
        condition: EtagCondition,
    ) -> StorageResult<()> {
        let t = self.table_mut(table)?;
        let key = (partition.to_owned(), row.to_owned());
        match t.get(&key) {
            None => Err(StorageError::EntityNotFound),
            Some((_, cur)) => {
                if !condition.admits(*cur) {
                    return Err(StorageError::PreconditionFailed);
                }
                t.remove(&key);
                Ok(())
            }
        }
    }

    /// Reinstate an entity with a specific tag (batch rollback only).
    pub(crate) fn restore(&mut self, table: &str, entity: Entity, tag: ETag) {
        if let Some(t) = self.tables.get_mut(table) {
            let key = (entity.partition_key.clone(), entity.row_key.clone());
            t.insert(key, (entity, tag));
        }
    }

    /// Number of entities in a table.
    pub fn entity_count(&self, table: &str) -> StorageResult<usize> {
        Ok(self.table(table)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azsim_storage::PropValue;
    use bytes::Bytes;

    fn store() -> TableStore {
        let mut s = TableStore::new();
        s.create_table("t").unwrap();
        s
    }

    fn entity(pk: &str, rk: &str, val: i64) -> Entity {
        Entity::new(pk, rk).with("v", PropValue::I64(val))
    }

    #[test]
    fn insert_query_roundtrip() {
        let mut s = store();
        let tag = s.insert("t", entity("p", "r", 5)).unwrap();
        let (e, t) = s.query("t", "p", "r").unwrap().unwrap();
        assert_eq!(e.properties["v"], PropValue::I64(5));
        assert_eq!(t, tag);
        assert!(s.query("t", "p", "other").unwrap().is_none());
        assert_eq!(s.entity_count("t").unwrap(), 1);
    }

    #[test]
    fn duplicate_insert_conflicts() {
        let mut s = store();
        s.insert("t", entity("p", "r", 1)).unwrap();
        assert_eq!(
            s.insert("t", entity("p", "r", 2)),
            Err(StorageError::AlreadyExists)
        );
        // Original untouched.
        let (e, _) = s.query("t", "p", "r").unwrap().unwrap();
        assert_eq!(e.properties["v"], PropValue::I64(1));
    }

    #[test]
    fn wildcard_update_always_applies_and_bumps_tag() {
        let mut s = store();
        let t1 = s.insert("t", entity("p", "r", 1)).unwrap();
        let t2 = s
            .update("t", entity("p", "r", 2), EtagCondition::Any)
            .unwrap();
        assert_ne!(t1, t2);
        let (e, cur) = s.query("t", "p", "r").unwrap().unwrap();
        assert_eq!(e.properties["v"], PropValue::I64(2));
        assert_eq!(cur, t2);
    }

    #[test]
    fn conditional_update_enforces_etag() {
        let mut s = store();
        let t1 = s.insert("t", entity("p", "r", 1)).unwrap();
        let t2 = s
            .update("t", entity("p", "r", 2), EtagCondition::Match(t1))
            .unwrap();
        // Lost-update protection: the stale tag no longer matches.
        assert_eq!(
            s.update("t", entity("p", "r", 3), EtagCondition::Match(t1)),
            Err(StorageError::PreconditionFailed)
        );
        s.update("t", entity("p", "r", 3), EtagCondition::Match(t2))
            .unwrap();
    }

    #[test]
    fn update_missing_entity_fails() {
        let mut s = store();
        assert_eq!(
            s.update("t", entity("p", "r", 1), EtagCondition::Any),
            Err(StorageError::EntityNotFound)
        );
    }

    #[test]
    fn delete_with_conditions() {
        let mut s = store();
        let t1 = s.insert("t", entity("p", "r", 1)).unwrap();
        assert_eq!(
            s.delete("t", "p", "r", EtagCondition::Match(ETag(t1.0 + 1))),
            Err(StorageError::PreconditionFailed)
        );
        s.delete("t", "p", "r", EtagCondition::Match(t1)).unwrap();
        assert_eq!(
            s.delete("t", "p", "r", EtagCondition::Any),
            Err(StorageError::EntityNotFound)
        );
    }

    #[test]
    fn partition_scan_is_row_key_ordered_and_scoped() {
        let mut s = store();
        s.insert("t", entity("p1", "b", 2)).unwrap();
        s.insert("t", entity("p1", "a", 1)).unwrap();
        s.insert("t", entity("p1", "c", 3)).unwrap();
        s.insert("t", entity("p2", "a", 9)).unwrap();
        let rows = s.query_partition("t", "p1").unwrap();
        let keys: Vec<&str> = rows.iter().map(|(e, _)| e.row_key.as_str()).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
        assert_eq!(s.query_partition("t", "p2").unwrap().len(), 1);
        assert!(s.query_partition("t", "p0").unwrap().is_empty());
    }

    #[test]
    fn entity_limits_enforced() {
        let mut s = store();
        // Too large (1 MB of binary payload plus keys).
        let big = Entity::new("p", "r").with(
            "v",
            PropValue::Binary(Bytes::from(vec![0u8; MAX_ENTITY_SIZE as usize])),
        );
        assert!(matches!(
            s.insert("t", big),
            Err(StorageError::EntityTooLarge { .. })
        ));
        // Too many properties.
        let mut many = Entity::new("p", "r");
        for i in 0..MAX_ENTITY_PROPERTIES + 1 {
            many = many.with(format!("p{i}"), PropValue::Bool(true));
        }
        assert!(matches!(
            s.insert("t", many),
            Err(StorageError::TooManyProperties { .. })
        ));
        // Exactly at the property limit is fine.
        let mut ok = Entity::new("p", "r");
        for i in 0..MAX_ENTITY_PROPERTIES {
            ok = ok.with(format!("p{i}"), PropValue::Bool(true));
        }
        s.insert("t", ok).unwrap();
    }

    #[test]
    fn schemaless_entities_in_same_table() {
        // "Two entities in the same table can have different properties."
        let mut s = store();
        s.insert("t", Entity::new("p", "a").with("x", PropValue::I64(1)))
            .unwrap();
        s.insert(
            "t",
            Entity::new("p", "b").with("y", PropValue::Str("hello".into())),
        )
        .unwrap();
        let rows = s.query_partition("t", "p").unwrap();
        assert!(rows[0].0.properties.contains_key("x"));
        assert!(rows[1].0.properties.contains_key("y"));
    }

    #[test]
    fn missing_table_errors() {
        let mut s = TableStore::new();
        assert!(matches!(
            s.insert("nope", entity("p", "r", 1)),
            Err(StorageError::TableNotFound(_))
        ));
        assert!(matches!(
            s.query("nope", "p", "r"),
            Err(StorageError::TableNotFound(_))
        ));
        assert!(matches!(
            s.delete_table("nope"),
            Err(StorageError::TableNotFound(_))
        ));
    }

    #[test]
    fn table_recreate_is_idempotent_but_delete_clears() {
        let mut s = store();
        s.insert("t", entity("p", "r", 1)).unwrap();
        s.create_table("t").unwrap(); // no-op
        assert_eq!(s.entity_count("t").unwrap(), 1);
        s.delete_table("t").unwrap();
        s.create_table("t").unwrap();
        assert_eq!(s.entity_count("t").unwrap(), 0);
    }

    proptest::proptest! {
        /// CRUD sequences agree with a HashMap reference model.
        #[test]
        fn prop_matches_reference(
            ops in proptest::collection::vec((0u8..4, 0u8..4, 0u8..4, 0i64..100), 1..200)
        ) {
            let mut s = store();
            let mut reference: std::collections::HashMap<(String, String), i64> =
                std::collections::HashMap::new();
            for (op, pk, rk, val) in ops {
                let pk = format!("p{pk}");
                let rk = format!("r{rk}");
                let key = (pk.clone(), rk.clone());
                let e = Entity::new(&pk, &rk).with("v", PropValue::I64(val));
                match op {
                    0 => {
                        let r = s.insert("t", e);
                        if let std::collections::hash_map::Entry::Vacant(e) = reference.entry(key) {
                            proptest::prop_assert!(r.is_ok());
                            e.insert(val);
                        } else {
                            proptest::prop_assert_eq!(r, Err(StorageError::AlreadyExists));
                        }
                    }
                    1 => {
                        let r = s.update("t", e, EtagCondition::Any);
                        if let std::collections::hash_map::Entry::Occupied(mut e) = reference.entry(key) {
                            proptest::prop_assert!(r.is_ok());
                            e.insert(val);
                        } else {
                            proptest::prop_assert_eq!(r, Err(StorageError::EntityNotFound));
                        }
                    }
                    2 => {
                        let r = s.delete("t", &pk, &rk, EtagCondition::Any);
                        if reference.remove(&key).is_some() {
                            proptest::prop_assert!(r.is_ok());
                        } else {
                            proptest::prop_assert_eq!(r, Err(StorageError::EntityNotFound));
                        }
                    }
                    _ => {
                        let got = s.query("t", &pk, &rk).unwrap();
                        match reference.get(&key) {
                            Some(&v) => {
                                let (e, _) = got.unwrap();
                                proptest::prop_assert_eq!(
                                    e.properties["v"].clone(), PropValue::I64(v));
                            }
                            None => proptest::prop_assert!(got.is_none()),
                        }
                    }
                }
            }
            proptest::prop_assert_eq!(s.entity_count("t").unwrap(), reference.len());
        }
    }
}
