//! Virtual time.
//!
//! [`SimTime`] is a nanosecond count since simulation start. All cluster
//! modelling and benchmark timing is done in this clock; it has no relation
//! to the host's wall clock, which is what makes runs reproducible and fast.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable time; used as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed duration since `earlier`. Saturates at zero rather than
    /// panicking so that defensive "how long has it been" code is safe.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0 + d.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.as_nanos() as u64;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when that can legitimately happen.
    fn sub(self, rhs: SimTime) -> Duration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        Duration::from_nanos(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Convert a byte count and a bandwidth into a transfer duration.
///
/// Rounds up to a whole nanosecond so that a nonzero transfer never takes
/// zero time (which would let an infinite amount of data through a pipe in
/// one instant).
pub fn transfer_time(bytes: u64, bytes_per_sec: f64) -> Duration {
    if bytes == 0 {
        return Duration::ZERO;
    }
    assert!(
        bytes_per_sec > 0.0,
        "bandwidth must be positive, got {bytes_per_sec}"
    );
    let nanos = (bytes as f64 / bytes_per_sec * 1e9).ceil() as u64;
    Duration::from_nanos(nanos.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime(2_000_000_000));
        assert_eq!(SimTime::from_millis(2_000), SimTime::from_secs(2));
        assert_eq!(SimTime::from_micros(2_000_000), SimTime::from_secs(2));
    }

    #[test]
    fn add_duration_advances_clock() {
        let t = SimTime::from_secs(1) + Duration::from_millis(500);
        assert_eq!(t, SimTime::from_millis(1_500));
        let mut u = SimTime::ZERO;
        u += Duration::from_nanos(7);
        assert_eq!(u.as_nanos(), 7);
    }

    #[test]
    fn subtraction_yields_duration() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(1);
        assert_eq!(a - b, Duration::from_secs(2));
        assert_eq!(b.saturating_since(a), Duration::ZERO);
    }

    #[test]
    fn ordering_and_max() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(
            SimTime::from_secs(1).max(SimTime::from_secs(2)),
            SimTime::from_secs(2)
        );
        assert!(SimTime::MAX > SimTime::from_secs(u32::MAX as u64));
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 1 byte at 1 GB/s is 1 ns exactly.
        assert_eq!(transfer_time(1, 1e9), Duration::from_nanos(1));
        // 1 byte at 2 GB/s would be 0.5 ns; must round up to 1 ns.
        assert_eq!(transfer_time(1, 2e9), Duration::from_nanos(1));
        // Zero bytes is free.
        assert_eq!(transfer_time(0, 1.0), Duration::ZERO);
        // 1 MB at 100 MB/s is 10 ms.
        assert_eq!(
            transfer_time(1_000_000, 100_000_000.0),
            Duration::from_millis(10)
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn transfer_time_rejects_zero_bandwidth() {
        let _ = transfer_time(1, 0.0);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1_500).to_string(), "1.500000s");
    }
}
