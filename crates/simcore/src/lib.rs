//! # azsim-core — discrete-event simulation kernel and virtual-time runtime
//!
//! This crate is the foundation of the AzureBench reproduction. It provides:
//!
//! * [`SimTime`] — a nanosecond-resolution virtual clock value.
//! * [`EventHeap`] — a deterministic priority queue of timestamped events
//!   with total tie-breaking, so simulations are bit-reproducible.
//! * Queueing resources ([`resource::FifoServer`], [`resource::Pipe`],
//!   [`resource::TokenBucket`]) used by the cluster model to turn operation
//!   descriptions into virtual latencies.
//! * [`runtime::Simulation`] — a single-threaded stackless-coroutine
//!   virtual-time executor. Each simulated role instance is a boxed future;
//!   the event heap drives polling directly (the popped event's actor is
//!   polled in place with a no-op waker), so a handoff between actors is a
//!   function call instead of an OS park/unpark. Same seed ⇒ identical
//!   results.
//! * [`shard::ShardedSimulation`] — a sharded conservative parallel
//!   executor: the event loop is partitioned across OS threads under a
//!   [`shard::ShardPlan`], synchronized in lookahead windows, and reproduces
//!   the serial `(time, actor, seq)` observable history bit-for-bit at every
//!   shard count.
//! * [`threaded::ThreadedSimulation`] — the original thread-per-actor
//!   baton-scheduling executor, retained as an executable reference for
//!   differential testing and for actor bodies that must block the host
//!   thread.
//! * [`rng`] — deterministic seed derivation so each simulated actor gets an
//!   independent, reproducible random stream.
//! * [`stats`] — small online-statistics helpers shared by the benchmark
//!   harness.
//!
//! The kernel knows nothing about Azure; the storage semantics live in the
//! `azsim-blob`/`azsim-queue`/`azsim-table` crates and the latency model in
//! `azsim-fabric`.

pub mod heap;
pub mod resource;
pub mod rng;
pub mod runtime;
pub mod shard;
pub mod stats;
pub mod threaded;
pub mod time;
pub mod timeline;

pub use heap::EventHeap;
pub use rng::actor_rng;
pub use runtime::{actor, block_on, ActorCtx, ActorId, Model, SimReport, Simulation, WindowStats};
pub use shard::{ShardPlan, ShardableModel, ShardedSimulation, WindowTuning};
pub use threaded::{ThreadedActorCtx, ThreadedSimulation};
pub use time::SimTime;
pub use timeline::{CounterId, GaugeId, GaugeRecorder, SaturationTracker, TimeSeries};
