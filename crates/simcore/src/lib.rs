//! # azsim-core — discrete-event simulation kernel and virtual-time runtime
//!
//! This crate is the foundation of the AzureBench reproduction. It provides:
//!
//! * [`SimTime`] — a nanosecond-resolution virtual clock value.
//! * [`EventHeap`] — a deterministic priority queue of timestamped events
//!   with total tie-breaking, so simulations are bit-reproducible.
//! * Queueing resources ([`resource::FifoServer`], [`resource::Pipe`],
//!   [`resource::TokenBucket`]) used by the cluster model to turn operation
//!   descriptions into virtual latencies.
//! * [`runtime::Simulation`] — a conservative virtual-time executor. Each
//!   simulated role instance is a real OS thread running ordinary blocking
//!   Rust code; the last thread to block on a timed action runs the next
//!   scheduling round itself (baton scheduling), batch-waking every actor
//!   whose event fires at the popped instant. The virtual clock advances
//!   only when every thread is parked. Same seed ⇒ identical results.
//! * [`rng`] — deterministic seed derivation so each simulated actor gets an
//!   independent, reproducible random stream.
//! * [`stats`] — small online-statistics helpers shared by the benchmark
//!   harness.
//!
//! The kernel knows nothing about Azure; the storage semantics live in the
//! `azsim-blob`/`azsim-queue`/`azsim-table` crates and the latency model in
//! `azsim-fabric`.

pub mod heap;
pub mod resource;
pub mod rng;
pub mod runtime;
pub mod stats;
pub mod time;
pub mod timeline;

pub use heap::EventHeap;
pub use runtime::{ActorCtx, ActorId, Model, Simulation};
pub use time::SimTime;
pub use timeline::{CounterId, GaugeId, GaugeRecorder, SaturationTracker, TimeSeries};
