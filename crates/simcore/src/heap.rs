//! Deterministic event heap.
//!
//! The executor pops events in `(time, actor, per-actor sequence)` order.
//! The per-actor sequence counter makes the ordering total and *independent
//! of the host-OS order in which concurrently running actor threads happened
//! to deliver their messages*, which is what makes the whole simulation
//! reproducible: the set of events present at any pop is determined by the
//! simulation history alone, and the key ordering is determined by the
//! events themselves.
//!
//! ## Layout
//!
//! The heap is an implicit **4-ary** min-heap over compact `(EventKey, slot)`
//! entries, with payloads parked in a separate slab and addressed by slot:
//!
//! * Sift operations move 32-byte key entries, never the payload — a
//!   [`crate::runtime`] `Arrival` carries the whole model request inline, so
//!   keeping payloads out of the sift path is what keeps a deep heap cheap
//!   at high actor counts (the engine-ladder cliff past 32 actors was
//!   dominated by `BinaryHeap` moving fat entries across `log n` levels).
//! * A 4-ary shape halves the number of levels versus a binary heap and the
//!   four children of a node share one or two cache lines, trading a few
//!   extra comparisons for far fewer cache misses.
//!
//! Freed payload slots are recycled LIFO, so steady-state simulations (each
//! actor keeping one or two events in flight) touch the same few slab lines
//! over and over.

use crate::runtime::ActorId;
use crate::time::SimTime;

/// A totally ordered event key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Virtual firing time.
    pub time: SimTime,
    /// Actor the event belongs to (ties across actors break by id).
    pub actor: ActorId,
    /// Per-actor monotonically increasing sequence number (ties within an
    /// actor break by issue order).
    pub seq: u64,
}

/// One sift-path entry: the ordering key plus the payload's slab slot.
#[derive(Clone, Copy)]
struct Entry {
    key: EventKey,
    slot: u32,
}

/// Min-heap of timestamped events with deterministic total ordering.
pub struct EventHeap<T> {
    /// Implicit 4-ary min-heap: children of `i` are `4i+1 ..= 4i+4`.
    entries: Vec<Entry>,
    /// Payload slab addressed by `Entry::slot`.
    slab: Vec<Option<T>>,
    /// Recycled slab slots (LIFO for cache locality).
    free: Vec<u32>,
    /// Highest time popped so far; used to enforce monotonicity.
    watermark: SimTime,
}

impl<T> Default for EventHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

const ARITY: usize = 4;

impl<T> EventHeap<T> {
    /// Create an empty heap.
    pub fn new() -> Self {
        EventHeap {
            entries: Vec::new(),
            slab: Vec::new(),
            free: Vec::new(),
            watermark: SimTime::ZERO,
        }
    }

    /// Create an empty heap with room for `n` pending events (steady-state
    /// simulations keep one or two events in flight per actor; sizing the
    /// arena up front avoids growth reallocations mid-run).
    pub fn with_capacity(n: usize) -> Self {
        EventHeap {
            entries: Vec::with_capacity(n),
            slab: Vec::with_capacity(n),
            free: Vec::new(),
            watermark: SimTime::ZERO,
        }
    }

    /// Schedule an event.
    ///
    /// Panics if the event is scheduled in the past relative to the last
    /// popped event — that would mean the simulation violated causality.
    pub fn push(&mut self, key: EventKey, payload: T) {
        assert!(
            key.time >= self.watermark,
            "event scheduled in the past: {:?} < watermark {:?}",
            key.time,
            self.watermark
        );
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = Some(payload);
                s
            }
            None => {
                let s = self.slab.len() as u32;
                self.slab.push(Some(payload));
                s
            }
        };
        self.entries.push(Entry { key, slot });
        self.sift_up(self.entries.len() - 1);
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(EventKey, T)> {
        let root = *self.entries.first()?;
        let last = self.entries.pop().expect("non-empty heap has a last entry");
        if !self.entries.is_empty() {
            self.entries[0] = last;
            self.sift_down(0);
        }
        self.watermark = root.key.time;
        let payload = self.slab[root.slot as usize]
            .take()
            .expect("heap entry pointed at an empty payload slot");
        self.free.push(root.slot);
        Some((root.key, payload))
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.entries.first().map(|e| e.key.time)
    }

    /// The earliest pending event without removing it. The scheduler uses
    /// this to decide whether the next event may join the current wake
    /// batch before committing to the pop.
    pub fn peek(&self) -> Option<(&EventKey, &T)> {
        let e = self.entries.first()?;
        let payload = self.slab[e.slot as usize]
            .as_ref()
            .expect("heap entry pointed at an empty payload slot");
        Some((&e.key, payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn sift_up(&mut self, mut i: usize) {
        let moving = self.entries[i];
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.entries[parent].key <= moving.key {
                break;
            }
            self.entries[i] = self.entries[parent];
            i = parent;
        }
        self.entries[i] = moving;
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        let moving = self.entries[i];
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= n {
                break;
            }
            let mut best = first_child;
            let end = (first_child + ARITY).min(n);
            for c in first_child + 1..end {
                if self.entries[c].key < self.entries[best].key {
                    best = c;
                }
            }
            if moving.key <= self.entries[best].key {
                break;
            }
            self.entries[i] = self.entries[best];
            i = best;
        }
        self.entries[i] = moving;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: u64, a: usize, s: u64) -> EventKey {
        EventKey {
            time: SimTime(t),
            actor: ActorId(a),
            seq: s,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut h = EventHeap::new();
        h.push(key(30, 0, 0), "c");
        h.push(key(10, 0, 1), "a");
        h.push(key(20, 0, 2), "b");
        assert_eq!(h.pop().unwrap().1, "a");
        assert_eq!(h.pop().unwrap().1, "b");
        assert_eq!(h.pop().unwrap().1, "c");
        assert!(h.pop().is_none());
    }

    #[test]
    fn ties_break_by_actor_then_seq() {
        let mut h = EventHeap::new();
        h.push(key(5, 2, 0), "actor2");
        h.push(key(5, 1, 7), "actor1-late");
        h.push(key(5, 1, 3), "actor1-early");
        assert_eq!(h.pop().unwrap().1, "actor1-early");
        assert_eq!(h.pop().unwrap().1, "actor1-late");
        assert_eq!(h.pop().unwrap().1, "actor2");
    }

    #[test]
    fn peek_time_reports_minimum() {
        let mut h = EventHeap::new();
        assert_eq!(h.peek_time(), None);
        h.push(key(42, 0, 0), ());
        h.push(key(7, 1, 0), ());
        assert_eq!(h.peek_time(), Some(SimTime(7)));
        let (k, _) = h.peek().unwrap();
        assert_eq!((k.time, k.actor), (SimTime(7), ActorId(1)));
        assert_eq!(h.len(), 2);
        assert!(!h.is_empty());
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn rejects_events_in_the_past() {
        let mut h = EventHeap::new();
        h.push(key(10, 0, 0), ());
        let _ = h.pop();
        h.push(key(5, 0, 1), ());
    }

    #[test]
    fn interleaved_push_pop_stays_monotone() {
        let mut h = EventHeap::new();
        h.push(key(1, 0, 0), 1u32);
        h.push(key(5, 0, 1), 5);
        assert_eq!(h.pop().unwrap().0.time, SimTime(1));
        // Scheduling at the watermark (same time as last pop) is allowed.
        h.push(key(1, 1, 0), 1);
        h.push(key(3, 0, 2), 3);
        let mut times = Vec::new();
        while let Some((k, _)) = h.pop() {
            times.push(k.time.as_nanos());
        }
        assert_eq!(times, vec![1, 3, 5]);
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut h = EventHeap::with_capacity(4);
        // Steady-state churn: the slab must not grow past the high-water
        // mark of concurrently pending events.
        for round in 0..1_000u64 {
            h.push(key(round + 1, 0, 2 * round), round);
            h.push(key(round + 1, 1, 2 * round + 1), round);
            assert_eq!(h.pop().unwrap().0.time, SimTime(round + 1));
            assert_eq!(h.pop().unwrap().0.time, SimTime(round + 1));
        }
        assert!(h.is_empty());
        assert!(h.slab.len() <= 2, "slab grew to {}", h.slab.len());
    }

    proptest::proptest! {
        /// Pop order is always non-decreasing in time no matter the push order.
        #[test]
        fn prop_pops_monotone(mut events in proptest::collection::vec((0u64..1000, 0usize..8), 0..200)) {
            let mut h = EventHeap::new();
            for (i, (t, a)) in events.iter().enumerate() {
                h.push(key(*t, *a, i as u64), ());
            }
            let mut last = 0u64;
            while let Some((k, _)) = h.pop() {
                proptest::prop_assert!(k.time.as_nanos() >= last);
                last = k.time.as_nanos();
            }
            events.clear();
        }

        /// The heap pops the exact key-sorted order of what was pushed
        /// (total order, not just time order), interleaved pushes included.
        #[test]
        fn prop_pops_full_sorted_order(events in proptest::collection::vec((0u64..500, 0usize..6), 1..150)) {
            let mut h = EventHeap::new();
            let mut keys: Vec<EventKey> = Vec::new();
            for (i, (t, a)) in events.iter().enumerate() {
                let k = key(*t, *a, i as u64);
                keys.push(k);
                h.push(k, i);
            }
            keys.sort();
            let mut popped = Vec::new();
            while let Some((k, _)) = h.pop() {
                popped.push(k);
            }
            proptest::prop_assert_eq!(popped, keys);
        }
    }
}
