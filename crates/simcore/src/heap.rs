//! Deterministic event heap.
//!
//! The coordinator pops events in `(time, actor, per-actor sequence)` order.
//! The per-actor sequence counter makes the ordering total and *independent
//! of the host-OS order in which concurrently running actor threads happened
//! to deliver their messages*, which is what makes the whole simulation
//! reproducible: the set of events present at any pop is determined by the
//! simulation history alone, and the key ordering is determined by the
//! events themselves.

use crate::runtime::ActorId;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A totally ordered event key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Virtual firing time.
    pub time: SimTime,
    /// Actor the event belongs to (ties across actors break by id).
    pub actor: ActorId,
    /// Per-actor monotonically increasing sequence number (ties within an
    /// actor break by issue order).
    pub seq: u64,
}

struct Entry<T> {
    key: EventKey,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Min-heap of timestamped events with deterministic total ordering.
pub struct EventHeap<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    /// Highest time popped so far; used to enforce monotonicity.
    watermark: SimTime,
}

impl<T> Default for EventHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventHeap<T> {
    /// Create an empty heap.
    pub fn new() -> Self {
        EventHeap {
            heap: BinaryHeap::new(),
            watermark: SimTime::ZERO,
        }
    }

    /// Schedule an event.
    ///
    /// Panics if the event is scheduled in the past relative to the last
    /// popped event — that would mean the simulation violated causality.
    pub fn push(&mut self, key: EventKey, payload: T) {
        assert!(
            key.time >= self.watermark,
            "event scheduled in the past: {:?} < watermark {:?}",
            key.time,
            self.watermark
        );
        self.heap.push(Reverse(Entry { key, payload }));
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(EventKey, T)> {
        let Reverse(e) = self.heap.pop()?;
        debug_assert!(e.key.time >= self.watermark);
        self.watermark = e.key.time;
        Some((e.key, e.payload))
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.key.time)
    }

    /// The earliest pending event without removing it. The scheduler uses
    /// this to decide whether the next event may join the current wake
    /// batch before committing to the pop.
    pub fn peek(&self) -> Option<(&EventKey, &T)> {
        self.heap.peek().map(|Reverse(e)| (&e.key, &e.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: u64, a: usize, s: u64) -> EventKey {
        EventKey {
            time: SimTime(t),
            actor: ActorId(a),
            seq: s,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut h = EventHeap::new();
        h.push(key(30, 0, 0), "c");
        h.push(key(10, 0, 1), "a");
        h.push(key(20, 0, 2), "b");
        assert_eq!(h.pop().unwrap().1, "a");
        assert_eq!(h.pop().unwrap().1, "b");
        assert_eq!(h.pop().unwrap().1, "c");
        assert!(h.pop().is_none());
    }

    #[test]
    fn ties_break_by_actor_then_seq() {
        let mut h = EventHeap::new();
        h.push(key(5, 2, 0), "actor2");
        h.push(key(5, 1, 7), "actor1-late");
        h.push(key(5, 1, 3), "actor1-early");
        assert_eq!(h.pop().unwrap().1, "actor1-early");
        assert_eq!(h.pop().unwrap().1, "actor1-late");
        assert_eq!(h.pop().unwrap().1, "actor2");
    }

    #[test]
    fn peek_time_reports_minimum() {
        let mut h = EventHeap::new();
        assert_eq!(h.peek_time(), None);
        h.push(key(42, 0, 0), ());
        h.push(key(7, 1, 0), ());
        assert_eq!(h.peek_time(), Some(SimTime(7)));
        let (k, _) = h.peek().unwrap();
        assert_eq!((k.time, k.actor), (SimTime(7), ActorId(1)));
        assert_eq!(h.len(), 2);
        assert!(!h.is_empty());
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn rejects_events_in_the_past() {
        let mut h = EventHeap::new();
        h.push(key(10, 0, 0), ());
        let _ = h.pop();
        h.push(key(5, 0, 1), ());
    }

    #[test]
    fn interleaved_push_pop_stays_monotone() {
        let mut h = EventHeap::new();
        h.push(key(1, 0, 0), 1u32);
        h.push(key(5, 0, 1), 5);
        assert_eq!(h.pop().unwrap().0.time, SimTime(1));
        // Scheduling at the watermark (same time as last pop) is allowed.
        h.push(key(1, 1, 0), 1);
        h.push(key(3, 0, 2), 3);
        let mut times = Vec::new();
        while let Some((k, _)) = h.pop() {
            times.push(k.time.as_nanos());
        }
        assert_eq!(times, vec![1, 3, 5]);
    }

    proptest::proptest! {
        /// Pop order is always non-decreasing in time no matter the push order.
        #[test]
        fn prop_pops_monotone(mut events in proptest::collection::vec((0u64..1000, 0usize..8), 0..200)) {
            let mut h = EventHeap::new();
            for (i, (t, a)) in events.iter().enumerate() {
                h.push(key(*t, *a, i as u64), ());
            }
            let mut last = 0u64;
            while let Some((k, _)) = h.pop() {
                proptest::prop_assert!(k.time.as_nanos() >= last);
                last = k.time.as_nanos();
            }
            events.clear();
        }
    }
}
