//! Deterministic event heap.
//!
//! The executor pops events in `(time, actor, per-actor sequence)` order.
//! The per-actor sequence counter makes the ordering total and *independent
//! of the host-OS order in which concurrently running actor threads happened
//! to deliver their messages*, which is what makes the whole simulation
//! reproducible: the set of events present at any pop is determined by the
//! simulation history alone, and the key ordering is determined by the
//! events themselves.
//!
//! ## Layout
//!
//! The heap is an implicit **4-ary** min-heap over compact `(EventKey, slot)`
//! entries, with payloads parked in a separate slab and addressed by slot:
//!
//! * Sift operations move 32-byte key entries, never the payload — a
//!   [`crate::runtime`] `Arrival` carries the whole model request inline, so
//!   keeping payloads out of the sift path is what keeps a deep heap cheap
//!   at high actor counts (the engine-ladder cliff past 32 actors was
//!   dominated by `BinaryHeap` moving fat entries across `log n` levels).
//! * A 4-ary shape halves the number of levels versus a binary heap and the
//!   four children of a node share one or two cache lines, trading a few
//!   extra comparisons for far fewer cache misses.
//!
//! Freed payload slots are recycled LIFO, so steady-state simulations (each
//! actor keeping one or two events in flight) touch the same few slab lines
//! over and over.
//!
//! ## Monotone tail fast path
//!
//! Discrete-event workloads push most events in already-sorted key order:
//! the executor pops events in key order, and a popped actor typically
//! schedules its next event one latency hop in the future — past every
//! pending key. Sifting such a push through a 100 000-entry heap pays
//! `log n` scattered cache misses for nothing. The heap therefore keeps a
//! second structure, a strictly-sorted **tail deque**: a push whose key
//! exceeds the tail's back is appended in O(1) (contiguous memory, no
//! sift); anything out of order falls back to the 4-ary heap. `pop` takes
//! whichever front is smaller, so the merged view stays a total order no
//! matter how pushes were routed. Steady-state ladder rungs route every
//! event through the tail, making both push and pop O(1) ring-buffer
//! operations regardless of actor count.

use crate::runtime::ActorId;
use crate::time::SimTime;
use std::collections::VecDeque;

/// A totally ordered event key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Virtual firing time.
    pub time: SimTime,
    /// Actor the event belongs to (ties across actors break by id).
    pub actor: ActorId,
    /// Per-actor monotonically increasing sequence number (ties within an
    /// actor break by issue order).
    pub seq: u64,
}

/// One sift-path entry: the ordering key plus the payload's slab slot.
#[derive(Clone, Copy)]
struct Entry {
    key: EventKey,
    slot: u32,
}

/// Min-heap of timestamped events with deterministic total ordering.
pub struct EventHeap<T> {
    /// Implicit 4-ary min-heap: children of `i` are `4i+1 ..= 4i+4`.
    /// Holds only the out-of-order pushes; in-order pushes go to `tail`.
    entries: Vec<Entry>,
    /// Strictly-sorted monotone tail: pushes whose key exceeds the back
    /// are appended here in O(1) instead of sifting through `entries`.
    tail: VecDeque<Entry>,
    /// Payload slab addressed by `Entry::slot`.
    slab: Vec<Option<T>>,
    /// Recycled slab slots (LIFO for cache locality).
    free: Vec<u32>,
    /// Highest time popped so far; used to enforce monotonicity.
    watermark: SimTime,
}

impl<T> Default for EventHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

const ARITY: usize = 4;

impl<T> EventHeap<T> {
    /// Create an empty heap.
    pub fn new() -> Self {
        EventHeap {
            entries: Vec::new(),
            tail: VecDeque::new(),
            slab: Vec::new(),
            free: Vec::new(),
            watermark: SimTime::ZERO,
        }
    }

    /// Create an empty heap with room for `n` pending events (steady-state
    /// simulations keep one or two events in flight per actor; sizing the
    /// arena up front avoids growth reallocations mid-run).
    pub fn with_capacity(n: usize) -> Self {
        EventHeap {
            entries: Vec::with_capacity(n),
            tail: VecDeque::with_capacity(n),
            slab: Vec::with_capacity(n),
            free: Vec::new(),
            watermark: SimTime::ZERO,
        }
    }

    /// Schedule an event.
    ///
    /// Panics if the event is scheduled in the past relative to the last
    /// popped event — that would mean the simulation violated causality.
    pub fn push(&mut self, key: EventKey, payload: T) {
        assert!(
            key.time >= self.watermark,
            "event scheduled in the past: {:?} < watermark {:?}",
            key.time,
            self.watermark
        );
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = Some(payload);
                s
            }
            None => {
                let s = self.slab.len() as u32;
                self.slab.push(Some(payload));
                s
            }
        };
        self.insert_entry(Entry { key, slot });
    }

    /// Route one entry: in-order keys append to the sorted tail in O(1);
    /// out-of-order keys sift into the 4-ary heap.
    #[inline]
    fn insert_entry(&mut self, e: Entry) {
        if self.tail.back().is_none_or(|b| b.key < e.key) {
            self.tail.push_back(e);
        } else {
            self.entries.push(e);
            self.sift_up(self.entries.len() - 1);
        }
    }

    /// Schedule a whole batch of events at once — the bulk-insert path
    /// behind the sharded executor's window drain.
    ///
    /// Semantically identical to pushing each event in iteration order,
    /// but the causality check runs once per batch (against the batch
    /// minimum) and the heap property is restored with one pass: either
    /// an incremental sift per appended entry, or — when the batch
    /// rivals the heap itself — a single O(n) heapify.
    pub fn push_batch(&mut self, batch: impl IntoIterator<Item = (EventKey, T)>) {
        let batch = batch.into_iter();
        let before = self.entries.len();
        self.tail.reserve(batch.size_hint().0);
        let mut batch_min: Option<EventKey> = None;
        for (key, payload) in batch {
            if batch_min.is_none_or(|m| key < m) {
                batch_min = Some(key);
            }
            let slot = match self.free.pop() {
                Some(s) => {
                    self.slab[s as usize] = Some(payload);
                    s
                }
                None => {
                    let s = self.slab.len() as u32;
                    self.slab.push(Some(payload));
                    s
                }
            };
            // In-order runs (lane drains arrive nearly sorted) append to
            // the tail; stragglers collect in `entries` for one restore
            // pass below.
            if self.tail.back().is_none_or(|b| b.key < key) {
                self.tail.push_back(Entry { key, slot });
            } else {
                self.entries.push(Entry { key, slot });
            }
        }
        let Some(min) = batch_min else {
            return;
        };
        assert!(
            min.time >= self.watermark,
            "event scheduled in the past: {:?} < watermark {:?}",
            min.time,
            self.watermark
        );
        let n = self.entries.len();
        let added = n - before;
        if added == 0 {
            return;
        }
        if added >= n / 2 && n >= 2 {
            // The batch dominates: one bottom-up heapify beats `added`
            // sift-up walks.
            for i in (0..=(n - 2) / ARITY).rev() {
                self.sift_down(i);
            }
        } else {
            // Sifting appended entries up in index order is equivalent to
            // having pushed them one at a time: a sift at index `i` only
            // touches ancestors of `i`, never later appended entries.
            for i in before..n {
                self.sift_up(i);
            }
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(EventKey, T)> {
        let from_tail = match (self.entries.first(), self.tail.front()) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(h), Some(t)) => t.key < h.key,
        };
        let e = if from_tail {
            self.tail.pop_front().expect("tail checked non-empty")
        } else {
            let root = *self.entries.first().expect("heap checked non-empty");
            let last = self.entries.pop().expect("non-empty heap has a last entry");
            if !self.entries.is_empty() {
                self.entries[0] = last;
                self.sift_down(0);
            }
            root
        };
        self.watermark = e.key.time;
        let payload = self.slab[e.slot as usize]
            .take()
            .expect("heap entry pointed at an empty payload slot");
        self.free.push(e.slot);
        Some((e.key, payload))
    }

    /// The smaller of the heap root and the tail front, if any.
    #[inline]
    fn front(&self) -> Option<&Entry> {
        match (self.entries.first(), self.tail.front()) {
            (None, t) => t,
            (h, None) => h,
            (Some(h), Some(t)) => Some(if t.key < h.key { t } else { h }),
        }
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.front().map(|e| e.key.time)
    }

    /// The earliest pending event without removing it. The scheduler uses
    /// this to decide whether the next event may join the current wake
    /// batch before committing to the pop.
    pub fn peek(&self) -> Option<(&EventKey, &T)> {
        let e = self.front()?;
        let payload = self.slab[e.slot as usize]
            .as_ref()
            .expect("heap entry pointed at an empty payload slot");
        Some((&e.key, payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.entries.len() + self.tail.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.tail.is_empty()
    }

    fn sift_up(&mut self, mut i: usize) {
        let moving = self.entries[i];
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.entries[parent].key <= moving.key {
                break;
            }
            self.entries[i] = self.entries[parent];
            i = parent;
        }
        self.entries[i] = moving;
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        let moving = self.entries[i];
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= n {
                break;
            }
            let mut best = first_child;
            let end = (first_child + ARITY).min(n);
            for c in first_child + 1..end {
                if self.entries[c].key < self.entries[best].key {
                    best = c;
                }
            }
            if moving.key <= self.entries[best].key {
                break;
            }
            self.entries[i] = self.entries[best];
            i = best;
        }
        self.entries[i] = moving;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: u64, a: usize, s: u64) -> EventKey {
        EventKey {
            time: SimTime(t),
            actor: ActorId(a),
            seq: s,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut h = EventHeap::new();
        h.push(key(30, 0, 0), "c");
        h.push(key(10, 0, 1), "a");
        h.push(key(20, 0, 2), "b");
        assert_eq!(h.pop().unwrap().1, "a");
        assert_eq!(h.pop().unwrap().1, "b");
        assert_eq!(h.pop().unwrap().1, "c");
        assert!(h.pop().is_none());
    }

    #[test]
    fn ties_break_by_actor_then_seq() {
        let mut h = EventHeap::new();
        h.push(key(5, 2, 0), "actor2");
        h.push(key(5, 1, 7), "actor1-late");
        h.push(key(5, 1, 3), "actor1-early");
        assert_eq!(h.pop().unwrap().1, "actor1-early");
        assert_eq!(h.pop().unwrap().1, "actor1-late");
        assert_eq!(h.pop().unwrap().1, "actor2");
    }

    #[test]
    fn peek_time_reports_minimum() {
        let mut h = EventHeap::new();
        assert_eq!(h.peek_time(), None);
        h.push(key(42, 0, 0), ());
        h.push(key(7, 1, 0), ());
        assert_eq!(h.peek_time(), Some(SimTime(7)));
        let (k, _) = h.peek().unwrap();
        assert_eq!((k.time, k.actor), (SimTime(7), ActorId(1)));
        assert_eq!(h.len(), 2);
        assert!(!h.is_empty());
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn rejects_events_in_the_past() {
        let mut h = EventHeap::new();
        h.push(key(10, 0, 0), ());
        let _ = h.pop();
        h.push(key(5, 0, 1), ());
    }

    #[test]
    fn interleaved_push_pop_stays_monotone() {
        let mut h = EventHeap::new();
        h.push(key(1, 0, 0), 1u32);
        h.push(key(5, 0, 1), 5);
        assert_eq!(h.pop().unwrap().0.time, SimTime(1));
        // Scheduling at the watermark (same time as last pop) is allowed.
        h.push(key(1, 1, 0), 1);
        h.push(key(3, 0, 2), 3);
        let mut times = Vec::new();
        while let Some((k, _)) = h.pop() {
            times.push(k.time.as_nanos());
        }
        assert_eq!(times, vec![1, 3, 5]);
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut h = EventHeap::with_capacity(4);
        // Steady-state churn: the slab must not grow past the high-water
        // mark of concurrently pending events.
        for round in 0..1_000u64 {
            h.push(key(round + 1, 0, 2 * round), round);
            h.push(key(round + 1, 1, 2 * round + 1), round);
            assert_eq!(h.pop().unwrap().0.time, SimTime(round + 1));
            assert_eq!(h.pop().unwrap().0.time, SimTime(round + 1));
        }
        assert!(h.is_empty());
        assert!(h.slab.len() <= 2, "slab grew to {}", h.slab.len());
    }

    #[test]
    fn monotone_pushes_bypass_the_sift_path() {
        let mut h = EventHeap::new();
        // Pops at time T proceed in ascending actor order, each scheduling
        // (T+hop, actor): the exact steady-state push pattern. Every key
        // exceeds the previous one, so all land in the O(1) tail.
        for round in 0..4u64 {
            for a in 0..8usize {
                h.push(key(round * 10 + 10, a, round), (round, a));
            }
            for a in 0..8usize {
                assert_eq!(h.pop().unwrap().0.actor, ActorId(a));
            }
        }
        assert_eq!(h.entries.len(), 0, "monotone pushes must not hit the heap");
        assert!(h.is_empty());
    }

    #[test]
    fn out_of_order_pushes_merge_with_the_tail() {
        let mut h = EventHeap::new();
        h.push(key(10, 0, 0), "t10");
        h.push(key(30, 0, 1), "t30"); // tail: [10, 30]
        h.push(key(20, 0, 2), "t20"); // out of order -> heap
        h.push(key(40, 0, 3), "t40"); // tail again
        h.push(key(25, 0, 4), "t25"); // heap again
        assert_eq!(h.len(), 5);
        assert_eq!(h.peek_time(), Some(SimTime(10)));
        let order: Vec<&str> = std::iter::from_fn(|| h.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec!["t10", "t20", "t25", "t30", "t40"]);
    }

    #[test]
    fn batch_push_matches_sequential_pushes() {
        let mut seq = EventHeap::new();
        let mut bat = EventHeap::new();
        let events: Vec<(EventKey, u64)> = (0..50)
            .map(|i| (key((i * 37) % 100 + 1, i as usize % 5, i), i))
            .collect();
        // Pre-populate both, then batch the rest into one and compare.
        for (k, v) in &events[..10] {
            seq.push(*k, *v);
            bat.push(*k, *v);
        }
        for (k, v) in &events[10..] {
            seq.push(*k, *v);
        }
        bat.push_batch(events[10..].iter().copied());
        while let Some(a) = seq.pop() {
            assert_eq!(Some(a), bat.pop());
        }
        assert!(bat.pop().is_none());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut h: EventHeap<()> = EventHeap::new();
        h.push(key(10, 0, 0), ());
        let _ = h.pop();
        h.push_batch(std::iter::empty());
        assert!(h.is_empty());
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn batch_rejects_events_in_the_past() {
        let mut h = EventHeap::new();
        h.push(key(10, 0, 0), ());
        let _ = h.pop();
        h.push_batch([(key(12, 0, 1), ()), (key(5, 0, 2), ())]);
    }

    proptest::proptest! {
        /// Batch insert is observably identical to sequential pushes, at
        /// every split point (exercises both the sift-up and the heapify
        /// restore paths).
        #[test]
        fn prop_batch_equals_sequential(
            events in proptest::collection::vec((1u64..1000, 0usize..8), 0..120),
            split in 0usize..120,
        ) {
            let split = split.min(events.len());
            let mut seq = EventHeap::new();
            let mut bat = EventHeap::new();
            for (i, (t, a)) in events.iter().enumerate() {
                seq.push(key(*t, *a, i as u64), i);
            }
            for (i, (t, a)) in events[..split].iter().enumerate() {
                bat.push(key(*t, *a, i as u64), i);
            }
            bat.push_batch(
                events[split..]
                    .iter()
                    .enumerate()
                    .map(|(j, (t, a))| (key(*t, *a, (split + j) as u64), split + j)),
            );
            let mut a = Vec::new();
            while let Some(e) = seq.pop() { a.push(e); }
            let mut b = Vec::new();
            while let Some(e) = bat.pop() { b.push(e); }
            proptest::prop_assert_eq!(a, b);
        }

        /// Pop order is always non-decreasing in time no matter the push order.
        #[test]
        fn prop_pops_monotone(mut events in proptest::collection::vec((0u64..1000, 0usize..8), 0..200)) {
            let mut h = EventHeap::new();
            for (i, (t, a)) in events.iter().enumerate() {
                h.push(key(*t, *a, i as u64), ());
            }
            let mut last = 0u64;
            while let Some((k, _)) = h.pop() {
                proptest::prop_assert!(k.time.as_nanos() >= last);
                last = k.time.as_nanos();
            }
            events.clear();
        }

        /// The heap pops the exact key-sorted order of what was pushed
        /// (total order, not just time order), interleaved pushes included.
        #[test]
        fn prop_pops_full_sorted_order(events in proptest::collection::vec((0u64..500, 0usize..6), 1..150)) {
            let mut h = EventHeap::new();
            let mut keys: Vec<EventKey> = Vec::new();
            for (i, (t, a)) in events.iter().enumerate() {
                let k = key(*t, *a, i as u64);
                keys.push(k);
                h.push(k, i);
            }
            keys.sort();
            let mut popped = Vec::new();
            while let Some((k, _)) = h.pop() {
                popped.push(k);
            }
            proptest::prop_assert_eq!(popped, keys);
        }
    }
}
