//! Thread-backed reference executor (the pre-coroutine design).
//!
//! This is the original conservative virtual-time executor: each simulated
//! role instance is a real OS thread holding a [`ThreadedActorCtx`], and a
//! handoff between actors costs an OS park/unpark. It is retained verbatim
//! as an *executable reference implementation* for differential testing of
//! the stackless-coroutine executor in [`crate::runtime`] — random actor
//! programs must produce bit-identical model traces, results, end times and
//! request counts on both backends (see the tests at the bottom of this
//! file). It is also the fallback for actor bodies that genuinely need to
//! block the host thread (FFI, real I/O) and therefore cannot be written as
//! futures.
//!
//! Benchmark code in this project looks exactly like the paper's worker-role
//! code: ordinary sequential calls such as `queue.put_message(..)` and
//! `ctx.sleep(Duration::from_secs(1))`. To run that code against a *modeled*
//! cluster with a *virtual* clock, each simulated role instance is a real OS
//! thread holding a [`ThreadedActorCtx`].
//!
//! ## Baton scheduling
//!
//! There is no coordinator thread. All scheduler state — the event heap,
//! per-actor clocks and sequence counters, the model itself — lives in one
//! mutex-protected [`CoordState`]. When an actor performs a timed action it
//! pushes its event and decrements the `running` count; whichever actor's
//! block (or exit) brings `running` to zero *becomes* the scheduler and runs
//! one scheduling round in place, waking the actors whose events fire next.
//! An actor whose own event is the earliest simply picks it out of its
//! mailbox and keeps going — a sequential stretch of simulated operations
//! costs **zero** OS context switches, and a genuine handoff between two
//! actors costs one park/unpark instead of the two (actor → coordinator →
//! actor) of a coordinator design.
//!
//! A scheduling round **batch-wakes** every actor whose `Deliver`/`Timer`
//! event is ready at the popped virtual instant: it keeps popping while the
//! next event carries the same timestamp and is a wakeup (stopping early at
//! an `Arrival`, which must be handed to the model only after earlier-keyed
//! events from the just-woken actors have been scheduled). Woken actors run
//! concurrently in host time but cannot advance the virtual clock — the next
//! round happens only once all of them block again.
//!
//! ## Why this is exact and deterministic
//!
//! * User code between two timed actions consumes **zero virtual time**, so
//!   the only places the clock can advance are inside a scheduling round,
//!   and rounds run only when every actor is parked.
//! * Events pop in `(time, actor, seq)` order from the [`EventHeap`]; the
//!   per-actor sequence numbers make that order a pure function of the
//!   simulation history, not of host-OS scheduling.
//! * Batch-waking preserves the one-event-at-a-time model trace: wakeups
//!   batched at time `T` never touch the model, a pending `Arrival` always
//!   ends the batch, and a woken actor's *future* pushes at `T` carry larger
//!   per-actor sequence numbers than anything it already consumed — so
//!   arrivals still reach [`Model::handle`] in exact heap-key order. The
//!   test module checks this against an executable one-at-a-time reference.
//! * The cluster model ([`Model::handle`]) sees arrivals in non-decreasing
//!   virtual-time order, which makes analytic `next_free` bookkeeping in the
//!   queueing resources exact (see [`crate::resource`]).
//!
//! A 100-worker benchmark that would take hours of wall-clock time on the
//! real service completes in seconds of host time.

use crate::heap::{EventHeap, EventKey};
use crate::rng::actor_rng;
use crate::runtime::{ActorId, Model, SimReport};
use crate::time::SimTime;
use rand::rngs::SmallRng;
use std::cell::{Cell, RefCell};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

enum Payload<M: Model> {
    Arrival(M::Req),
    Deliver(M::Resp),
    Timer,
}

/// What a scheduling round leaves in a woken actor's mailbox.
enum Mail<Resp> {
    Response(SimTime, Resp),
    Timer(SimTime),
    /// The simulation is being torn down because some thread panicked;
    /// unwind instead of continuing.
    Dead,
}

/// Panic payload used to cascade a teardown to blocked actors. Kept as a
/// `&'static str` literal so the root cause can be told apart from the
/// cascade when propagating panics to the caller.
const DEAD_MSG: &str = "simulation terminated: another actor failed";

fn is_cascade(p: &(dyn std::any::Any + Send)) -> bool {
    p.downcast_ref::<&'static str>() == Some(&DEAD_MSG)
}

/// All mutable scheduler state, guarded by one mutex.
struct CoordState<M: Model> {
    heap: EventHeap<Payload<M>>,
    /// Per-actor event sequence counters (tie-break within one instant).
    seq: Vec<u64>,
    /// Per-actor virtual clocks (time of the last wakeup delivered).
    actor_time: Vec<SimTime>,
    /// One slot per actor; a scheduling round deposits the wakeup here.
    mailbox: Vec<Option<Mail<M::Resp>>>,
    model: M,
    /// Actors currently executing user code (not parked, not finished).
    running: usize,
    /// Actors whose body has not yet returned.
    live: usize,
    end_time: SimTime,
    requests: u64,
    /// Total events popped from the heap.
    events: u64,
    /// Set on the first panic; all subsequent activity unwinds.
    dead: bool,
}

struct Shared<M: Model> {
    state: Mutex<CoordState<M>>,
    /// One condvar per actor so a round wakes exactly the actors it means to.
    cvars: Vec<Condvar>,
}

impl<M: Model> Shared<M> {
    /// Lock the scheduler state, recovering from poison: a panicking thread
    /// marks the state `dead` before unwinding, so the data is consistent.
    fn lock(&self) -> MutexGuard<'_, CoordState<M>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Run one scheduling round. Caller must hold the lock with
    /// `running == 0` and at least one live actor.
    ///
    /// Pops the earliest event, then keeps popping while further events are
    /// wakeups at the *same instant*, waking each target actor (batch-wake).
    /// Arrivals are handled inline until the first wakeup is produced; after
    /// that an arrival ends the batch, because the just-woken actors may
    /// still push earlier-keyed events at this instant.
    fn round(&self, st: &mut CoordState<M>, me: usize) {
        debug_assert_eq!(st.running, 0);
        let mut batch: Option<SimTime> = None;
        loop {
            match st.heap.peek() {
                None => {
                    assert!(
                        batch.is_some(),
                        "deadlock: live actors blocked with no pending events"
                    );
                    return;
                }
                Some((k, p)) => {
                    if let Some(t) = batch {
                        if k.time != t || matches!(p, Payload::Arrival(_)) {
                            return;
                        }
                    }
                }
            }
            let (k, payload) = st.heap.pop().expect("peeked event vanished");
            st.end_time = k.time;
            st.events += 1;
            let a = k.actor.0;
            match payload {
                Payload::Arrival(req) => {
                    st.requests += 1;
                    let (done, resp) = st.model.handle(k.time, k.actor, req);
                    assert!(
                        done >= k.time,
                        "model completed a request before it arrived"
                    );
                    let dk = EventKey {
                        time: done,
                        actor: k.actor,
                        seq: st.seq[a],
                    };
                    st.seq[a] += 1;
                    st.heap.push(dk, Payload::Deliver(resp));
                }
                Payload::Deliver(resp) => {
                    st.actor_time[a] = k.time;
                    st.mailbox[a] = Some(Mail::Response(k.time, resp));
                    st.running += 1;
                    if a != me {
                        self.cvars[a].notify_one();
                    }
                    batch = Some(k.time);
                }
                Payload::Timer => {
                    st.actor_time[a] = k.time;
                    st.mailbox[a] = Some(Mail::Timer(k.time));
                    st.running += 1;
                    if a != me {
                        self.cvars[a].notify_one();
                    }
                    batch = Some(k.time);
                }
            }
        }
    }

    /// Run a round; if it panics (model bug, deadlock), mark the simulation
    /// dead and wake everyone before re-raising, so no thread stays parked.
    fn round_or_kill(&self, st: &mut CoordState<M>, me: usize) {
        if let Err(p) = std::panic::catch_unwind(AssertUnwindSafe(|| self.round(st, me))) {
            self.kill(st);
            std::panic::resume_unwind(p);
        }
    }

    /// Tear the simulation down: every parked actor gets [`Mail::Dead`] and
    /// a wakeup so it can unwind instead of waiting forever.
    fn kill(&self, st: &mut CoordState<M>) {
        st.dead = true;
        for (mb, cv) in st.mailbox.iter_mut().zip(&self.cvars) {
            if mb.is_none() {
                *mb = Some(Mail::Dead);
            }
            cv.notify_all();
        }
    }
}

/// Handle through which an actor thread interacts with virtual time.
///
/// Not `Sync`: each actor owns exactly one context.
pub struct ThreadedActorCtx<M: Model> {
    id: usize,
    now: Cell<u64>,
    calls: Cell<u64>,
    shared: Arc<Shared<M>>,
    rng: RefCell<SmallRng>,
}

impl<M: Model> ThreadedActorCtx<M> {
    /// This actor's id (0-based, dense).
    pub fn id(&self) -> ActorId {
        ActorId(self.id)
    }

    /// Current virtual time as observed by this actor.
    pub fn now(&self) -> SimTime {
        SimTime(self.now.get())
    }

    /// Number of [`ThreadedActorCtx::call`]s issued so far.
    pub fn call_count(&self) -> u64 {
        self.calls.get()
    }

    /// Push an event `delay` after this actor's clock, park until a
    /// scheduling round wakes us, and return the mailbox contents. The last
    /// actor to park runs the round itself instead of parking.
    fn block_on(&self, payload: Payload<M>, delay: Duration) -> Mail<M::Resp> {
        let sh = &*self.shared;
        let mut st = sh.lock();
        if st.dead {
            std::panic::panic_any(DEAD_MSG);
        }
        let k = EventKey {
            time: st.actor_time[self.id] + delay,
            actor: ActorId(self.id),
            seq: st.seq[self.id],
        };
        st.seq[self.id] += 1;
        st.heap.push(k, payload);
        st.running -= 1;
        loop {
            if let Some(mail) = st.mailbox[self.id].take() {
                if let Mail::Dead = mail {
                    std::panic::panic_any(DEAD_MSG);
                }
                return mail;
            }
            if st.dead {
                std::panic::panic_any(DEAD_MSG);
            }
            if st.running == 0 {
                sh.round_or_kill(&mut st, self.id);
            } else {
                st = sh.cvars[self.id]
                    .wait(st)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }
    }

    /// Submit a request to the model and block (in virtual time) until its
    /// response is delivered.
    pub fn call(&self, req: M::Req) -> M::Resp {
        self.calls.set(self.calls.get() + 1);
        match self.block_on(Payload::Arrival(req), Duration::ZERO) {
            Mail::Response(t, resp) => {
                self.now.set(t.as_nanos());
                resp
            }
            _ => unreachable!("timer wakeup while awaiting response"),
        }
    }

    /// Advance this actor's clock by `d` without doing any work (the paper's
    /// *think time*, and the 1 s back-off before retrying a throttled
    /// operation).
    pub fn sleep(&self, d: Duration) {
        match self.block_on(Payload::Timer, d) {
            Mail::Timer(t) => self.now.set(t.as_nanos()),
            _ => unreachable!("response wakeup while sleeping"),
        }
    }

    /// Run `f` with this actor's deterministic random stream.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut SmallRng) -> R) -> R {
        f(&mut self.rng.borrow_mut())
    }
}

/// Retires the actor from the scheduler when its closure returns *or
/// panics*, so a crashing actor can't deadlock the simulation. If this was
/// the last running actor, the retirement itself runs the next round.
struct FinishGuard<M: Model> {
    shared: Arc<Shared<M>>,
}

impl<M: Model> Drop for FinishGuard<M> {
    fn drop(&mut self) {
        let sh = &*self.shared;
        let mut st = sh.lock();
        st.live -= 1;
        // On a panic path out of `block_on` the actor was already counted
        // out of `running` (and the simulation is already dead); saturate
        // rather than corrupt another actor's count.
        st.running = st.running.saturating_sub(1);
        if st.dead || st.running > 0 || st.live == 0 {
            return;
        }
        if std::thread::panicking() {
            // Keep the other actors going; if the round itself fails we must
            // swallow that panic (resuming a second panic while unwinding
            // would abort) and just tear everything down.
            if std::panic::catch_unwind(AssertUnwindSafe(|| sh.round(&mut st, usize::MAX))).is_err()
            {
                sh.kill(&mut st);
            }
        } else {
            sh.round_or_kill(&mut st, usize::MAX);
        }
    }
}

/// A boxed actor body: receives a context reference, returns a result.
pub type ThreadedActorFn<'a, M, R> = Box<dyn FnOnce(&ThreadedActorCtx<M>) -> R + Send + 'a>;

/// A virtual-time simulation on the thread-backed executor: a model plus a
/// master seed.
pub struct ThreadedSimulation<M: Model> {
    model: M,
    seed: u64,
}

impl<M: Model> ThreadedSimulation<M> {
    /// Create a simulation over `model` with deterministic seed `seed`.
    pub fn new(model: M, seed: u64) -> Self {
        ThreadedSimulation { model, seed }
    }

    /// Run `n` identical workers (the common benchmark shape: the paper
    /// deploys N copies of the same worker role).
    pub fn run_workers<R, F>(self, n: usize, body: F) -> SimReport<M, R>
    where
        R: Send,
        F: Fn(&ThreadedActorCtx<M>) -> R + Send + Sync,
    {
        let body = &body;
        let actors: Vec<ThreadedActorFn<'_, M, R>> = (0..n)
            .map(|_| {
                Box::new(move |ctx: &ThreadedActorCtx<M>| body(ctx)) as ThreadedActorFn<'_, M, R>
            })
            .collect();
        self.run(actors)
    }

    /// Run a heterogeneous set of actors (e.g. one web role plus N worker
    /// roles). Actor ids are assigned by position.
    pub fn run<'a, R: Send>(self, actors: Vec<ThreadedActorFn<'a, M, R>>) -> SimReport<M, R> {
        let ThreadedSimulation { model, seed } = self;
        let n = actors.len();
        let shared = Arc::new(Shared {
            state: Mutex::new(CoordState {
                heap: EventHeap::new(),
                seq: vec![0; n],
                actor_time: vec![SimTime::ZERO; n],
                mailbox: (0..n).map(|_| None).collect(),
                model,
                running: n,
                live: n,
                end_time: SimTime::ZERO,
                requests: 0,
                events: 0,
                dead: false,
            }),
            cvars: (0..n).map(|_| Condvar::new()).collect(),
        });

        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();

        let panics = std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(n);
            for (i, (body, slot)) in actors.into_iter().zip(&mut results).enumerate() {
                let ctx = ThreadedActorCtx {
                    id: i,
                    now: Cell::new(0),
                    calls: Cell::new(0),
                    shared: Arc::clone(&shared),
                    rng: RefCell::new(actor_rng(seed, ActorId(i))),
                };
                handles.push(s.spawn(move || {
                    let _guard = FinishGuard {
                        shared: Arc::clone(&ctx.shared),
                    };
                    *slot = Some(body(&ctx));
                }));
            }
            handles
                .into_iter()
                .filter_map(|h| h.join().err())
                .collect::<Vec<_>>()
        });

        if !panics.is_empty() {
            // Prefer the root cause over "another actor failed" cascades.
            let root = panics
                .iter()
                .position(|p| !is_cascade(p.as_ref()))
                .unwrap_or(0);
            std::panic::resume_unwind(panics.into_iter().nth(root).expect("root panic index"));
        }

        let shared = Arc::into_inner(shared).expect("actor contexts outlived the simulation");
        let st = shared.state.into_inner().unwrap_or_else(|p| p.into_inner());
        SimReport {
            model: st.model,
            results: results
                .into_iter()
                .map(|r| r.expect("actor finished without producing a result"))
                .collect(),
            end_time: st.end_time,
            requests: st.requests,
            events: st.events,
            shard_events: vec![st.events],
            window_stats: Vec::new(),
            history_hash: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A model that echoes the request after a fixed latency plus FIFO
    /// queueing on a single shared server.
    struct EchoModel {
        server: crate::resource::FifoServer,
        service: Duration,
        handled: Vec<(u64, usize, u32)>,
    }

    impl Model for EchoModel {
        type Req = u32;
        type Resp = (u32, SimTime);
        fn handle(&mut self, now: SimTime, actor: ActorId, req: u32) -> (SimTime, Self::Resp) {
            self.handled.push((now.as_nanos(), actor.0, req));
            let (_, end) = self.server.admit(now, self.service);
            (end, (req, end))
        }
    }

    fn echo(service_ms: u64) -> EchoModel {
        EchoModel {
            server: crate::resource::FifoServer::new(),
            service: Duration::from_millis(service_ms),
            handled: Vec::new(),
        }
    }

    #[test]
    fn sleep_advances_virtual_clock() {
        let sim = ThreadedSimulation::new(echo(1), 0);
        let report = sim.run_workers(1, |ctx| {
            assert_eq!(ctx.now(), SimTime::ZERO);
            ctx.sleep(Duration::from_secs(5));
            assert_eq!(ctx.now(), SimTime::from_secs(5));
            ctx.sleep(Duration::from_millis(1));
            ctx.now()
        });
        assert_eq!(report.results[0], SimTime::from_millis(5_001));
        assert_eq!(report.end_time, SimTime::from_millis(5_001));
        assert_eq!(report.requests, 0);
    }

    #[test]
    fn call_returns_model_response_and_advances_clock() {
        let sim = ThreadedSimulation::new(echo(10), 0);
        let report = sim.run_workers(1, |ctx| {
            let (val, done) = ctx.call(7);
            assert_eq!(val, 7);
            assert_eq!(done, SimTime::from_millis(10));
            assert_eq!(ctx.now(), done);
            assert_eq!(ctx.call_count(), 1);
        });
        assert_eq!(report.requests, 1);
        assert_eq!(report.model.handled, vec![(0, 0, 7)]);
    }

    #[test]
    fn shared_server_queues_concurrent_actors() {
        // Two actors call at t=0; the single server serializes them: one
        // completes at 10 ms, the other at 20 ms.
        let sim = ThreadedSimulation::new(echo(10), 0);
        let report = sim.run_workers(2, |ctx| {
            let (_, done) = ctx.call(ctx.id().0 as u32);
            done
        });
        let mut ends: Vec<u64> = report.results.iter().map(|t| t.as_nanos()).collect();
        ends.sort_unstable();
        assert_eq!(
            ends,
            vec![
                SimTime::from_millis(10).as_nanos(),
                SimTime::from_millis(20).as_nanos()
            ]
        );
        // Arrivals were both at t=0, in actor-id order (deterministic ties).
        assert_eq!(report.model.handled, vec![(0, 0, 0), (0, 1, 1)]);
    }

    #[test]
    fn sequential_calls_from_one_actor_pipeline_correctly() {
        let sim = ThreadedSimulation::new(echo(5), 0);
        let report = sim.run_workers(1, |ctx| {
            let mut ends = Vec::new();
            for i in 0..3 {
                let (_, done) = ctx.call(i);
                ends.push(done.as_nanos());
            }
            ends
        });
        assert_eq!(
            report.results[0],
            vec![
                SimTime::from_millis(5).as_nanos(),
                SimTime::from_millis(10).as_nanos(),
                SimTime::from_millis(15).as_nanos()
            ]
        );
    }

    #[test]
    fn heterogeneous_actors_via_run() {
        let sim = ThreadedSimulation::new(echo(1), 0);
        let actors: Vec<ThreadedActorFn<'_, EchoModel, u32>> = vec![
            Box::new(|ctx| {
                ctx.sleep(Duration::from_secs(1));
                100
            }),
            Box::new(|ctx| ctx.call(5).0),
        ];
        let report = sim.run(actors);
        assert_eq!(report.results, vec![100, 5]);
    }

    #[test]
    fn actor_can_finish_without_any_action() {
        let sim = ThreadedSimulation::new(echo(1), 0);
        let report = sim.run_workers(4, |_ctx| 42u8);
        assert_eq!(report.results, vec![42; 4]);
        assert_eq!(report.end_time, SimTime::ZERO);
    }

    #[test]
    fn deterministic_across_runs() {
        // Many actors with random think times and calls: the full model
        // trace and all results must be identical across runs.
        let run_once = || {
            let sim = ThreadedSimulation::new(echo(3), 1234);
            let report = sim.run_workers(16, |ctx| {
                let mut log = Vec::new();
                for i in 0..20 {
                    let think: u64 = ctx.with_rng(|r| r.random_range(0..5_000));
                    ctx.sleep(Duration::from_micros(think));
                    let (_, done) = ctx.call(i);
                    log.push(done.as_nanos());
                }
                log
            });
            (report.model.handled, report.results, report.end_time)
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.0, b.0, "model traces differ");
        assert_eq!(a.1, b.1, "actor results differ");
        assert_eq!(a.2, b.2, "end times differ");
    }

    #[test]
    fn arrivals_reach_model_in_time_order() {
        let sim = ThreadedSimulation::new(echo(1), 7);
        let report = sim.run_workers(8, |ctx| {
            for i in 0..10 {
                let think: u64 = ctx.with_rng(|r| r.random_range(0..2_000));
                ctx.sleep(Duration::from_micros(think));
                ctx.call(i);
            }
        });
        let times: Vec<u64> = report.model.handled.iter().map(|h| h.0).collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "arrivals out of order"
        );
        assert_eq!(report.requests, 80);
    }

    #[test]
    fn panicking_actor_propagates_without_deadlock() {
        let sim = ThreadedSimulation::new(echo(1), 0);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run_workers(3, |ctx| {
                if ctx.id().0 == 1 {
                    panic!("boom");
                }
                ctx.sleep(Duration::from_millis(1));
            })
        }));
        assert!(outcome.is_err(), "panic must propagate");
    }

    #[test]
    fn panic_payload_is_the_root_cause_not_the_cascade() {
        let sim = ThreadedSimulation::new(echo(1), 0);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run_workers(4, |ctx| {
                ctx.sleep(Duration::from_millis(1));
                if ctx.id().0 == 2 {
                    panic!("root cause");
                }
                ctx.sleep(Duration::from_secs(1));
            })
        }));
        let payload = match outcome {
            Err(p) => p,
            Ok(_) => panic!("panic must propagate"),
        };
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, "root cause");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        /// Arbitrary per-actor programs of sleeps and calls are (a)
        /// deterministic across runs and (b) respect per-actor clock
        /// monotonicity and model-arrival time ordering.
        #[test]
        fn prop_random_programs_deterministic(
            programs in proptest::collection::vec(
                proptest::collection::vec((proptest::bool::ANY, 0u64..3_000), 0..15),
                1..6),
            seed in 0u64..1_000,
        ) {
            let run = |programs: &Vec<Vec<(bool, u64)>>| {
                let sim = ThreadedSimulation::new(echo(2), seed);
                let actors: Vec<ThreadedActorFn<'_, EchoModel, Vec<u64>>> = programs
                    .iter()
                    .cloned()
                    .map(|prog| {
                        Box::new(move |ctx: &ThreadedActorCtx<EchoModel>| {
                            let mut times = Vec::new();
                            let mut last = ctx.now();
                            for (is_call, arg) in prog {
                                if is_call {
                                    ctx.call(arg as u32);
                                } else {
                                    ctx.sleep(Duration::from_micros(arg));
                                }
                                // Per-actor clock monotonicity.
                                assert!(ctx.now() >= last);
                                last = ctx.now();
                                times.push(ctx.now().as_nanos());
                            }
                            times
                        }) as ThreadedActorFn<'_, EchoModel, Vec<u64>>
                    })
                    .collect();
                let report = sim.run(actors);
                // Model saw arrivals in non-decreasing time order.
                let arrivals: Vec<u64> = report.model.handled.iter().map(|h| h.0).collect();
                assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
                (report.results, report.end_time, report.requests)
            };
            let a = run(&programs);
            let b = run(&programs);
            proptest::prop_assert_eq!(&a.0, &b.0);
            proptest::prop_assert_eq!(a.1, b.1);
            // Total requests equals the number of `call` steps.
            let calls: u64 = programs.iter()
                .flat_map(|p| p.iter())
                .filter(|(is_call, _)| *is_call)
                .count() as u64;
            proptest::prop_assert_eq!(a.2, calls);
        }

        /// The simulation end time equals the latest event fired — never
        /// earlier than any actor's final clock.
        #[test]
        fn prop_end_time_bounds_actor_clocks(
            sleeps in proptest::collection::vec(0u64..5_000, 1..8)
        ) {
            let sim = ThreadedSimulation::new(echo(1), 3);
            let sleeps2 = sleeps.clone();
            let actors: Vec<ThreadedActorFn<'_, EchoModel, SimTime>> = sleeps2
                .into_iter()
                .map(|us| {
                    Box::new(move |ctx: &ThreadedActorCtx<EchoModel>| {
                        ctx.sleep(Duration::from_micros(us));
                        ctx.call(1);
                        ctx.now()
                    }) as ThreadedActorFn<'_, EchoModel, SimTime>
                })
                .collect();
            let report = sim.run(actors);
            let max_clock = report.results.iter().max().copied().unwrap();
            proptest::prop_assert_eq!(report.end_time, max_clock);
        }
    }

    #[test]
    fn per_actor_rngs_differ_but_are_reproducible() {
        let draws = |seed| {
            let sim = ThreadedSimulation::new(echo(1), seed);
            let report = sim.run_workers(3, |ctx| ctx.with_rng(|r| r.random::<u64>()));
            report.results
        };
        let a = draws(5);
        let b = draws(5);
        let c = draws(6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a[0], a[1]);
    }

    // ------------------------------------------------------------------
    // Batch-wake vs one-event-at-a-time reference.
    //
    // The original executor woke exactly one actor per event pop and waited
    // for it to block again before popping the next event. The batch-wake
    // scheduler must produce the *identical* model trace, per-actor wakeup
    // times, end time, and request count. `run_reference` is an executable
    // spec of the one-at-a-time discipline: since test programs are fixed
    // step lists, "wait for the actor to block again" is exactly "push its
    // next event immediately after delivering its wakeup".
    // ------------------------------------------------------------------

    #[derive(Clone, Copy, Debug)]
    enum Step {
        Call(u32),
        SleepUs(u64),
    }

    type Trace = (Vec<(u64, usize, u32)>, Vec<Vec<u64>>, u64, u64);

    fn run_reference(service_ms: u64, programs: &[Vec<Step>]) -> Trace {
        let n = programs.len();
        let mut model = echo(service_ms);
        let mut heap: EventHeap<Payload<EchoModel>> = EventHeap::new();
        let mut seq = vec![0u64; n];
        let mut at = vec![SimTime::ZERO; n];
        let mut pc = vec![0usize; n];
        let mut results: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut end_time = SimTime::ZERO;
        let mut requests = 0u64;

        fn submit(
            programs: &[Vec<Step>],
            a: usize,
            heap: &mut EventHeap<Payload<EchoModel>>,
            seq: &mut [u64],
            at: &[SimTime],
            pc: &[usize],
        ) {
            if let Some(step) = programs[a].get(pc[a]) {
                let (t, p) = match *step {
                    Step::Call(v) => (at[a], Payload::Arrival(v)),
                    Step::SleepUs(us) => (at[a] + Duration::from_micros(us), Payload::Timer),
                };
                heap.push(
                    EventKey {
                        time: t,
                        actor: ActorId(a),
                        seq: seq[a],
                    },
                    p,
                );
                seq[a] += 1;
            }
        }

        for a in 0..n {
            submit(programs, a, &mut heap, &mut seq, &at, &pc);
        }
        while let Some((k, payload)) = heap.pop() {
            end_time = k.time;
            let a = k.actor.0;
            match payload {
                Payload::Arrival(req) => {
                    requests += 1;
                    let (done, resp) = model.handle(k.time, k.actor, req);
                    heap.push(
                        EventKey {
                            time: done,
                            actor: k.actor,
                            seq: seq[a],
                        },
                        Payload::Deliver(resp),
                    );
                    seq[a] += 1;
                }
                Payload::Deliver(_) | Payload::Timer => {
                    at[a] = k.time;
                    results[a].push(k.time.as_nanos());
                    pc[a] += 1;
                    submit(programs, a, &mut heap, &mut seq, &at, &pc);
                }
            }
        }
        (model.handled, results, end_time.as_nanos(), requests)
    }

    fn run_real(service_ms: u64, programs: &[Vec<Step>]) -> Trace {
        let sim = ThreadedSimulation::new(echo(service_ms), 0);
        let actors: Vec<ThreadedActorFn<'_, EchoModel, Vec<u64>>> = programs
            .iter()
            .map(|prog| {
                let prog = prog.clone();
                Box::new(move |ctx: &ThreadedActorCtx<EchoModel>| {
                    let mut times = Vec::new();
                    for step in &prog {
                        match *step {
                            Step::Call(v) => {
                                ctx.call(v);
                            }
                            Step::SleepUs(us) => ctx.sleep(Duration::from_micros(us)),
                        }
                        times.push(ctx.now().as_nanos());
                    }
                    times
                }) as ThreadedActorFn<'_, EchoModel, Vec<u64>>
            })
            .collect();
        let report = sim.run(actors);
        (
            report.model.handled,
            report.results,
            report.end_time.as_nanos(),
            report.requests,
        )
    }

    /// The same program list on the stackless-coroutine executor
    /// ([`crate::runtime::Simulation`]): the differential counterpart of
    /// [`run_real`] for backend-equivalence tests.
    fn run_coroutine(service_ms: u64, programs: &[Vec<Step>]) -> Trace {
        let sim = crate::runtime::Simulation::new(echo(service_ms), 0);
        let actors: Vec<crate::runtime::ActorFn<'_, EchoModel, Vec<u64>>> = programs
            .iter()
            .map(|prog| {
                let prog = prog.clone();
                crate::runtime::actor(move |ctx: crate::runtime::ActorCtx<EchoModel>| async move {
                    let mut times = Vec::new();
                    for step in &prog {
                        match *step {
                            Step::Call(v) => {
                                ctx.call(v).await;
                            }
                            Step::SleepUs(us) => ctx.sleep(Duration::from_micros(us)).await,
                        }
                        times.push(ctx.now().as_nanos());
                    }
                    times
                })
            })
            .collect();
        let report = sim.run(actors);
        (
            report.model.handled,
            report.results,
            report.end_time.as_nanos(),
            report.requests,
        )
    }

    #[test]
    fn batch_wake_matches_reference_at_shared_instants() {
        // Every actor sleeps the same durations, so all timers fire at the
        // same virtual instants and each round batch-wakes all of them.
        let programs: Vec<Vec<Step>> = (0..8)
            .map(|i| {
                vec![
                    Step::SleepUs(1_000),
                    Step::Call(i as u32),
                    Step::SleepUs(1_000),
                    Step::Call(100 + i as u32),
                ]
            })
            .collect();
        assert_eq!(run_real(3, &programs), run_reference(3, &programs));
    }

    #[test]
    fn zero_length_sleeps_match_reference() {
        // Zero-duration timers pile events at one instant together with
        // arrivals — the batch must still end at each arrival.
        let programs: Vec<Vec<Step>> = (0..4)
            .map(|i| {
                vec![
                    Step::SleepUs(0),
                    Step::Call(i as u32),
                    Step::SleepUs(0),
                    Step::SleepUs(0),
                    Step::Call(10 + i as u32),
                ]
            })
            .collect();
        assert_eq!(run_real(1, &programs), run_reference(1, &programs));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
        /// Random programs: the batch-wake scheduler reproduces the
        /// one-at-a-time reference trace exactly. Sleep durations are drawn
        /// from a tiny range so distinct actors frequently collide on the
        /// same virtual instant and exercise the batching path.
        #[test]
        fn prop_matches_one_at_a_time_reference(
            programs in proptest::collection::vec(
                proptest::collection::vec((proptest::bool::ANY, 0u64..4), 0..12),
                1..7),
        ) {
            let programs: Vec<Vec<Step>> = programs
                .iter()
                .map(|p| {
                    p.iter()
                        .map(|&(is_call, v)| if is_call {
                            Step::Call(v as u32)
                        } else {
                            Step::SleepUs(v * 500)
                        })
                        .collect()
                })
                .collect();
            proptest::prop_assert_eq!(run_real(2, &programs), run_reference(2, &programs));
        }

        /// Differential test between executors: random actor programs must
        /// produce identical model traces, per-step wakeup times, end times
        /// and request counts on the stackless-coroutine executor, the
        /// thread-backed executor, and the one-at-a-time reference.
        #[test]
        fn prop_coroutine_matches_threaded_and_reference(
            programs in proptest::collection::vec(
                proptest::collection::vec((proptest::bool::ANY, 0u64..4), 0..12),
                1..7),
        ) {
            let programs: Vec<Vec<Step>> = programs
                .iter()
                .map(|p| {
                    p.iter()
                        .map(|&(is_call, v)| if is_call {
                            Step::Call(v as u32)
                        } else {
                            Step::SleepUs(v * 500)
                        })
                        .collect()
                })
                .collect();
            let coroutine = run_coroutine(2, &programs);
            proptest::prop_assert_eq!(&coroutine, &run_real(2, &programs));
            proptest::prop_assert_eq!(&coroutine, &run_reference(2, &programs));
        }
    }

    #[test]
    fn coroutine_matches_threaded_at_shared_instants() {
        // The fixed scenario that exercises batch-wake on the threaded
        // backend: all timers collide at the same virtual instants. The
        // coroutine executor must agree event for event.
        let programs: Vec<Vec<Step>> = (0..8)
            .map(|i| {
                vec![
                    Step::SleepUs(1_000),
                    Step::Call(i as u32),
                    Step::SleepUs(1_000),
                    Step::Call(100 + i as u32),
                ]
            })
            .collect();
        let coroutine = run_coroutine(3, &programs);
        assert_eq!(coroutine, run_real(3, &programs));
        assert_eq!(coroutine, run_reference(3, &programs));
    }
}
