//! Queueing resources used by the cluster latency model.
//!
//! All three resources are *non-preemptive and FIFO-by-arrival*, which is
//! what allows the runtime to compute a request's completion time
//! analytically at arrival (a single event per operation): the global event
//! heap delivers arrivals to each resource in non-decreasing time order, so
//! `next_free` bookkeeping is exact.

use crate::time::{transfer_time, SimTime};
use std::time::Duration;

/// A serialized service station (e.g. a partition server's request worker):
/// requests are served one at a time in arrival order.
#[derive(Clone, Debug)]
pub struct FifoServer {
    next_free: SimTime,
    busy: Duration,
    served: u64,
}

impl Default for FifoServer {
    fn default() -> Self {
        Self::new()
    }
}

impl FifoServer {
    /// An idle server.
    pub fn new() -> Self {
        FifoServer {
            next_free: SimTime::ZERO,
            busy: Duration::ZERO,
            served: 0,
        }
    }

    /// Admit a request arriving at `arrival` needing `service` time.
    /// Returns `(start, end)` of its service interval.
    pub fn admit(&mut self, arrival: SimTime, service: Duration) -> (SimTime, SimTime) {
        let start = arrival.max(self.next_free);
        let end = start + service;
        self.next_free = end;
        self.busy += service;
        self.served += 1;
        (start, end)
    }

    /// When the server next becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total service time dispensed (for utilization reporting).
    pub fn busy_time(&self) -> Duration {
        self.busy
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

/// A serialized byte pipe with fixed bandwidth (a NIC, a per-blob data path,
/// a front-end uplink). Transfers occupy the pipe back-to-back.
#[derive(Clone, Debug)]
pub struct Pipe {
    bytes_per_sec: f64,
    inner: FifoServer,
    bytes: u64,
}

impl Pipe {
    /// A pipe with the given bandwidth in bytes per second.
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "pipe bandwidth must be positive");
        Pipe {
            bytes_per_sec,
            inner: FifoServer::new(),
            bytes: 0,
        }
    }

    /// Transfer `bytes` starting no earlier than `arrival`.
    /// Returns `(start, end)` of the transfer.
    ///
    /// A zero-byte transfer is free and does **not** occupy the pipe (it
    /// must not move `next_free`, or empty acknowledgements would falsely
    /// serialize unrelated traffic behind their timestamps).
    pub fn transfer(&mut self, arrival: SimTime, bytes: u64) -> (SimTime, SimTime) {
        if bytes == 0 {
            return (arrival, arrival);
        }
        self.bytes += bytes;
        self.inner
            .admit(arrival, transfer_time(bytes, self.bytes_per_sec))
    }

    /// Configured bandwidth.
    pub fn bandwidth(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Total bytes moved through the pipe.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes
    }

    /// When the pipe next becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.inner.next_free()
    }

    /// Total time the pipe has been occupied by transfers (for utilization
    /// reporting).
    pub fn busy_time(&self) -> Duration {
        self.inner.busy_time()
    }
}

/// Outcome of a [`TokenBucket`] admission attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Admission {
    /// The request is admitted.
    Granted,
    /// The request is rejected; the bucket will have capacity again after
    /// roughly this long (callers typically surface `ServerBusy` and let the
    /// client retry).
    Throttled(Duration),
}

/// A token-bucket rate limiter operating in virtual time. Models the
/// documented Azure scalability targets (500 msg/s per queue, 500 entities/s
/// per table partition, 5 000 tx/s per account, 3 GB/s per account).
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last_refill: SimTime,
    throttled: u64,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec` with capacity `burst`, starting
    /// full.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        assert!(rate_per_sec > 0.0 && burst > 0.0);
        TokenBucket {
            rate_per_sec,
            burst,
            tokens: burst,
            last_refill: SimTime::ZERO,
            throttled: 0,
        }
    }

    fn refill(&mut self, now: SimTime) {
        if now > self.last_refill {
            let dt = (now - self.last_refill).as_secs_f64();
            self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.burst);
            self.last_refill = now;
        }
    }

    /// Try to take `cost` tokens at virtual time `now`.
    pub fn acquire(&mut self, now: SimTime, cost: f64) -> Admission {
        self.refill(now);
        if self.tokens >= cost {
            self.tokens -= cost;
            Admission::Granted
        } else {
            self.throttled += 1;
            let deficit = cost - self.tokens;
            let wait = Duration::from_secs_f64(deficit / self.rate_per_sec);
            Admission::Throttled(wait)
        }
    }

    /// Tokens currently available (after refilling to `now`).
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Tokens that *would* be available at `now`, computed without
    /// mutating the bucket.
    ///
    /// Telemetry must use this rather than [`TokenBucket::available`]:
    /// splitting one refill interval into two changes float accumulation
    /// (`tokens + dt₁·r + dt₂·r ≠ tokens + (dt₁+dt₂)·r` in general), so a
    /// mutating probe could flip a later borderline admission and make an
    /// "observability-only" feature change simulated outcomes.
    pub fn fill(&self, now: SimTime) -> f64 {
        if now > self.last_refill {
            let dt = (now - self.last_refill).as_secs_f64();
            (self.tokens + dt * self.rate_per_sec).min(self.burst)
        } else {
            self.tokens
        }
    }

    /// Configured burst capacity.
    pub fn burst(&self) -> f64 {
        self.burst
    }

    /// Number of rejected acquisitions so far.
    pub fn throttle_count(&self) -> u64 {
        self.throttled
    }

    /// Configured steady-state rate.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_server_serializes() {
        let mut s = FifoServer::new();
        let (a0, e0) = s.admit(SimTime::from_millis(0), Duration::from_millis(10));
        assert_eq!(a0, SimTime::ZERO);
        assert_eq!(e0, SimTime::from_millis(10));
        // Arrives while busy: queued behind the first.
        let (a1, e1) = s.admit(SimTime::from_millis(5), Duration::from_millis(10));
        assert_eq!(a1, SimTime::from_millis(10));
        assert_eq!(e1, SimTime::from_millis(20));
        // Arrives after idle: starts immediately.
        let (a2, e2) = s.admit(SimTime::from_millis(100), Duration::from_millis(1));
        assert_eq!(a2, SimTime::from_millis(100));
        assert_eq!(e2, SimTime::from_millis(101));
        assert_eq!(s.served(), 3);
        assert_eq!(s.busy_time(), Duration::from_millis(21));
    }

    #[test]
    fn pipe_bandwidth_determines_duration() {
        let mut p = Pipe::new(1_000_000.0); // 1 MB/s
        let (_, end) = p.transfer(SimTime::ZERO, 500_000);
        assert_eq!(end, SimTime::from_millis(500));
        assert_eq!(p.bytes_transferred(), 500_000);
        // Second transfer queues behind the first.
        let (start, _) = p.transfer(SimTime::ZERO, 1);
        assert_eq!(start, SimTime::from_millis(500));
    }

    #[test]
    fn zero_byte_transfer_is_free_and_does_not_occupy_pipe() {
        let mut p = Pipe::new(1_000.0);
        let (s, e) = p.transfer(SimTime::from_secs(100), 0);
        assert_eq!(s, SimTime::from_secs(100));
        assert_eq!(e, SimTime::from_secs(100));
        // The pipe is still idle at t=0 for a later-arriving-earlier call.
        let (s, _) = p.transfer(SimTime::ZERO, 10);
        assert_eq!(s, SimTime::ZERO);
        assert_eq!(p.bytes_transferred(), 10);
    }

    #[test]
    fn token_bucket_grants_until_empty() {
        let mut b = TokenBucket::new(10.0, 5.0);
        for _ in 0..5 {
            assert_eq!(b.acquire(SimTime::ZERO, 1.0), Admission::Granted);
        }
        match b.acquire(SimTime::ZERO, 1.0) {
            Admission::Throttled(w) => assert_eq!(w, Duration::from_millis(100)),
            g => panic!("expected throttle, got {g:?}"),
        }
        assert_eq!(b.throttle_count(), 1);
    }

    #[test]
    fn token_bucket_refills_over_time() {
        let mut b = TokenBucket::new(10.0, 5.0);
        for _ in 0..5 {
            assert_eq!(b.acquire(SimTime::ZERO, 1.0), Admission::Granted);
        }
        // After 0.3 s, three tokens have come back.
        let t = SimTime::from_millis(300);
        assert!((b.available(t) - 3.0).abs() < 1e-9);
        assert_eq!(b.acquire(t, 3.0), Admission::Granted);
        assert!(matches!(b.acquire(t, 0.5), Admission::Throttled(_)));
    }

    #[test]
    fn token_bucket_caps_at_burst() {
        let mut b = TokenBucket::new(1000.0, 2.0);
        assert_eq!(b.acquire(SimTime::ZERO, 2.0), Admission::Granted);
        // A long idle period refills only to the burst cap.
        let t = SimTime::from_secs(3600);
        assert!((b.available(t) - 2.0).abs() < 1e-9);
    }

    proptest::proptest! {
        /// A bucket never admits more than burst + rate*elapsed tokens over
        /// any prefix of an arbitrary admission schedule.
        #[test]
        fn prop_bucket_never_over_admits(
            steps in proptest::collection::vec((0u64..10_000, 1u32..4), 1..200)
        ) {
            let rate = 100.0;
            let burst = 10.0;
            let mut b = TokenBucket::new(rate, burst);
            let mut now = SimTime::ZERO;
            let mut admitted = 0.0f64;
            for (advance_us, cost) in steps {
                now += Duration::from_micros(advance_us);
                if b.acquire(now, cost as f64) == Admission::Granted {
                    admitted += cost as f64;
                }
                let bound = burst + rate * now.as_secs_f64() + 1e-6;
                proptest::prop_assert!(admitted <= bound,
                    "admitted {admitted} exceeds bound {bound}");
            }
        }

        /// Token conservation as seen through the passive `fill` gauge:
        /// at every instant, fill + admitted + overflow = burst + rate·elapsed
        /// (within float error), where overflow is the inflow a full bucket
        /// discarded. The test mirrors the refill arithmetic step for step,
        /// which also pins down that `fill` is side-effect-free — a mutating
        /// probe would desynchronize the shadow copy.
        #[test]
        fn prop_fill_gauge_conserves_tokens(
            steps in proptest::collection::vec((0u64..50_000, 1u32..4), 1..300)
        ) {
            let rate = 100.0;
            let burst = 10.0;
            let mut b = TokenBucket::new(rate, burst);
            let mut now = SimTime::ZERO;
            let mut last = SimTime::ZERO;
            let mut shadow = burst;
            let mut admitted = 0.0f64;
            let mut overflow = 0.0f64;
            for (advance_us, cost) in steps {
                now += Duration::from_micros(advance_us);
                if now > last {
                    let inflow = (now - last).as_secs_f64() * rate;
                    let uncapped = shadow + inflow;
                    let capped = uncapped.min(burst);
                    overflow += uncapped - capped;
                    shadow = capped;
                    last = now;
                }
                // Two passive reads in a row: identical, and neither may
                // perturb the admission below.
                let f1 = b.fill(now);
                let f2 = b.fill(now);
                proptest::prop_assert_eq!(f1, f2);
                proptest::prop_assert!((f1 - shadow).abs() < 1e-9,
                    "fill {f1} diverged from shadow {shadow}");
                if b.acquire(now, cost as f64) == Admission::Granted {
                    shadow -= cost as f64;
                    admitted += cost as f64;
                }
                let fill = b.fill(now);
                let lhs = fill + admitted + overflow;
                let rhs = burst + rate * now.as_secs_f64();
                proptest::prop_assert!((lhs - rhs).abs() < 1e-6,
                    "conservation violated: fill {fill} + admitted {admitted} \
                     + overflow {overflow} = {lhs} vs {rhs}");
            }
        }

        /// FIFO server: service intervals never overlap and respect arrival order.
        #[test]
        fn prop_fifo_no_overlap(
            reqs in proptest::collection::vec((0u64..1_000_000, 1u64..10_000), 1..100)
        ) {
            let mut sorted = reqs.clone();
            sorted.sort_by_key(|r| r.0);
            let mut s = FifoServer::new();
            let mut last_end = SimTime::ZERO;
            for (arr, svc) in sorted {
                let (start, end) = s.admit(SimTime(arr), Duration::from_nanos(svc));
                proptest::prop_assert!(start >= last_end);
                proptest::prop_assert!(start >= SimTime(arr));
                proptest::prop_assert_eq!(end, start + Duration::from_nanos(svc));
                last_end = end;
            }
        }
    }
}
