//! Stackless-coroutine virtual-time executor.
//!
//! Benchmark code in this project looks exactly like the paper's worker-role
//! code: ordinary sequential calls such as `queue.put_message(..).await` and
//! `ctx.sleep(Duration::from_secs(1)).await`. Each simulated role instance
//! is a **future** (an [`ActorFn`] body), not an OS thread: the event heap
//! drives polling directly, so a handoff between two actors is a function
//! call instead of a mutex/condvar round-trip.
//!
//! ## Polling discipline
//!
//! The executor is single-threaded and owns all scheduler state — the event
//! heap, per-actor clocks and sequence counters, the model itself — in one
//! [`ExecState`] behind a `RefCell`. Execution proceeds in two phases:
//!
//! 1. **Launch.** Every actor future is polled once, in actor-id order,
//!    before any event is popped. An actor runs until its first timed action
//!    (`call`/`sleep`), whose future pushes one event keyed
//!    `(time, actor, seq)` on its *first* poll and returns `Pending` — the
//!    exact "submit all first events, then pop" discipline of the
//!    one-at-a-time reference interpreter.
//! 2. **Event loop.** Events pop one at a time in `(time, actor, seq)`
//!    order. An `Arrival` is handed to [`Model::handle`] and its response
//!    scheduled as a `Deliver` at the completion time. A `Deliver`/`Timer`
//!    advances the target actor's clock, deposits the wakeup in its mailbox
//!    slot, and polls that actor's future in place with a no-op waker
//!    ([`std::task::Waker::noop`]); the future takes the mail, runs user
//!    code until the next timed action (pushing the next event), and returns
//!    `Pending` again — or completes.
//!
//! ## Why this is exact and deterministic
//!
//! * User code between two timed actions consumes **zero virtual time** and
//!   runs to quiescence within a single `poll`, so the only place the clock
//!   advances is the event loop.
//! * Events pop in `(time, actor, seq)` order from the [`EventHeap`]; the
//!   per-actor sequence numbers make that order a pure function of the
//!   simulation history. No wakers, no ready-queues, no host-OS scheduling
//!   anywhere in the loop: the executor *is* the one-at-a-time reference
//!   interpreter that the thread-backed executor ([`crate::threaded`]) is
//!   tested against, so both backends — and therefore all golden figure
//!   artifacts — agree bit-for-bit by construction.
//! * The cluster model ([`Model::handle`]) sees arrivals in non-decreasing
//!   virtual-time order, which makes analytic `next_free` bookkeeping in the
//!   queueing resources exact (see [`crate::resource`]).
//!
//! ## Invariants
//!
//! * Every `Pending` poll of an actor future has pushed exactly one event
//!   for that actor first (enforced by the [`Wait`] future). Hence an empty
//!   heap with unfinished actors is a genuine deadlock and panics.
//! * A panic in an actor body unwinds straight through the executor to the
//!   caller — single-threaded execution needs no cascade-teardown machinery,
//!   and the payload is always the root cause.
//!
//! Per-actor cost is one boxed future instead of an OS thread stack, so
//! simulations scale far past the paper's ~100-worker ceiling: the engine
//! benchmark ladder runs 512 actors at the same per-op cost as 32.

use crate::heap::{EventHeap, EventKey};
use crate::rng::stream_rng;
use crate::time::SimTime;
use rand::rngs::SmallRng;
use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};
use std::time::Duration;

/// Identifies a simulated actor (role instance) within one simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub usize);

/// The simulated world that actors talk to.
///
/// `handle` is invoked by the scheduler when a request *arrives* (in
/// virtual-arrival order) and must return the request's completion time
/// together with its response. Implementations mutate their internal state
/// (storage contents, resource bookkeeping) as a side effect.
///
/// The `Send` supertrait is required by the thread-backed reference executor
/// ([`crate::threaded`]); the coroutine executor itself never moves the
/// model across threads.
pub trait Model: Send {
    /// Request type actors submit via [`ActorCtx::call`].
    type Req: Send;
    /// Response type returned to the actor.
    type Resp: Send;

    /// Process a request arriving at `now` from `actor`; return
    /// `(completion_time, response)` with `completion_time >= now`.
    fn handle(&mut self, now: SimTime, actor: ActorId, req: Self::Req) -> (SimTime, Self::Resp);
}

enum Payload<M: Model> {
    Arrival(M::Req),
    Deliver(M::Resp),
    Timer,
}

/// What the event loop leaves in a woken actor's mailbox slot. The firing
/// time is not carried here: it is already recorded in the actor's clock
/// (`actor_time`) before the actor is polled.
enum Mail<Resp> {
    Response(Resp),
    Timer,
}

/// All scheduler state, owned by the executor and shared with the per-actor
/// [`ActorCtx`] handles through an `Rc<RefCell<..>>`. Borrows are always
/// transient: the executor drops its borrow before polling an actor, and the
/// [`Wait`] future drops its borrow before returning from `poll`.
struct ExecState<M: Model> {
    heap: EventHeap<Payload<M>>,
    /// Per-actor event sequence counters (tie-break within one instant).
    seq: Vec<u64>,
    /// Per-actor virtual clocks (time of the last wakeup delivered).
    actor_time: Vec<SimTime>,
    /// One slot per actor; the event loop deposits the wakeup here.
    mailbox: Vec<Option<Mail<M::Resp>>>,
    /// Per-actor count of [`ActorCtx::call`]s issued.
    calls: Vec<u64>,
    model: M,
    end_time: SimTime,
    requests: u64,
}

/// Handle through which an actor body interacts with virtual time.
///
/// Cheap to clone (two `Rc` bumps): clones share the same actor identity,
/// clock, random stream and scheduler state, so an environment wrapper may
/// hold its own copy while the actor body keeps another.
pub struct ActorCtx<M: Model> {
    id: ActorId,
    rng: Rc<RefCell<SmallRng>>,
    state: Rc<RefCell<ExecState<M>>>,
}

impl<M: Model> Clone for ActorCtx<M> {
    fn clone(&self) -> Self {
        ActorCtx {
            id: self.id,
            rng: Rc::clone(&self.rng),
            state: Rc::clone(&self.state),
        }
    }
}

impl<M: Model> ActorCtx<M> {
    /// This actor's id (0-based, dense).
    pub fn id(&self) -> ActorId {
        self.id
    }

    /// Current virtual time as observed by this actor.
    pub fn now(&self) -> SimTime {
        self.state.borrow().actor_time[self.id.0]
    }

    /// Number of [`ActorCtx::call`]s issued so far.
    pub fn call_count(&self) -> u64 {
        self.state.borrow().calls[self.id.0]
    }

    /// Submit a request to the model and wait (in virtual time) until its
    /// response is delivered.
    pub async fn call(&self, req: M::Req) -> M::Resp {
        self.state.borrow_mut().calls[self.id.0] += 1;
        match self.wait(Payload::Arrival(req), Duration::ZERO).await {
            Mail::Response(resp) => resp,
            Mail::Timer => unreachable!("timer wakeup while awaiting response"),
        }
    }

    /// Advance this actor's clock by `d` without doing any work (the paper's
    /// *think time*, and the 1 s back-off before retrying a throttled
    /// operation).
    pub async fn sleep(&self, d: Duration) {
        match self.wait(Payload::Timer, d).await {
            Mail::Timer => {}
            Mail::Response(_) => unreachable!("response wakeup while sleeping"),
        }
    }

    /// Run `f` with this actor's deterministic random stream.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut SmallRng) -> R) -> R {
        f(&mut self.rng.borrow_mut())
    }

    fn wait(&self, payload: Payload<M>, delay: Duration) -> Wait<'_, M> {
        Wait {
            ctx: self,
            pending: Some((payload, delay)),
        }
    }
}

/// The one awaitable in the system: on its first poll it pushes the actor's
/// next event (`delay` after the actor's clock) and returns `Pending`; when
/// the event loop deposits the wakeup in the actor's mailbox and re-polls,
/// it takes the mail and completes.
struct Wait<'a, M: Model> {
    ctx: &'a ActorCtx<M>,
    pending: Option<(Payload<M>, Duration)>,
}

// `Wait` holds no self-references, and `Pin` never needs to project into the
// payload: the future is safely movable regardless of `M`'s auto traits.
impl<M: Model> Unpin for Wait<'_, M> {}

impl<M: Model> Future for Wait<'_, M> {
    type Output = Mail<M::Resp>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let i = this.ctx.id.0;
        if let Some((payload, delay)) = this.pending.take() {
            let mut st = this.ctx.state.borrow_mut();
            let k = EventKey {
                time: st.actor_time[i] + delay,
                actor: this.ctx.id,
                seq: st.seq[i],
            };
            st.seq[i] += 1;
            st.heap.push(k, payload);
            return Poll::Pending;
        }
        match this.ctx.state.borrow_mut().mailbox[i].take() {
            Some(mail) => Poll::Ready(mail),
            // Spurious poll (e.g. via `block_on` on a foreign executor):
            // stay pending until the event loop delivers the wakeup.
            None => Poll::Pending,
        }
    }
}

/// A boxed actor body future.
pub type ActorFuture<'a, R> = Pin<Box<dyn Future<Output = R> + 'a>>;

/// A boxed actor body: receives its context by value, returns a future.
pub type ActorFn<'a, M, R> = Box<dyn FnOnce(ActorCtx<M>) -> ActorFuture<'a, R> + 'a>;

/// Box an async closure into an [`ActorFn`] — sugar for heterogeneous
/// [`Simulation::run`] actor lists:
///
/// ```ignore
/// actors.push(actor(|ctx| async move { ctx.sleep(d).await; 0 }));
/// ```
pub fn actor<'a, M, R, F, Fut>(f: F) -> ActorFn<'a, M, R>
where
    M: Model,
    F: FnOnce(ActorCtx<M>) -> Fut + 'a,
    Fut: Future<Output = R> + 'a,
{
    Box::new(move |ctx| Box::pin(f(ctx)) as ActorFuture<'a, R>)
}

/// Outcome of a completed simulation.
pub struct SimReport<M, R> {
    /// The model, with all its end-of-run state and counters.
    pub model: M,
    /// Per-actor results, indexed by actor id.
    pub results: Vec<R>,
    /// Virtual time at which the last event fired.
    pub end_time: SimTime,
    /// Total number of model requests processed.
    pub requests: u64,
}

/// A virtual-time simulation: a model plus a master seed.
pub struct Simulation<M: Model> {
    model: M,
    seed: u64,
}

impl<M: Model> Simulation<M> {
    /// Create a simulation over `model` with deterministic seed `seed`.
    pub fn new(model: M, seed: u64) -> Self {
        Simulation { model, seed }
    }

    /// Run `n` identical workers (the common benchmark shape: the paper
    /// deploys N copies of the same worker role).
    pub fn run_workers<R, F, Fut>(self, n: usize, body: F) -> SimReport<M, R>
    where
        F: Fn(ActorCtx<M>) -> Fut,
        Fut: Future<Output = R>,
    {
        let body = &body;
        let actors: Vec<ActorFn<'_, M, R>> = (0..n).map(|_| actor(body)).collect();
        self.run(actors)
    }

    /// Run a heterogeneous set of actors (e.g. one web role plus N worker
    /// roles). Actor ids are assigned by position.
    pub fn run<'a, R>(self, actors: Vec<ActorFn<'a, M, R>>) -> SimReport<M, R> {
        let Simulation { model, seed } = self;
        let n = actors.len();
        let state = Rc::new(RefCell::new(ExecState {
            heap: EventHeap::new(),
            seq: vec![0; n],
            actor_time: vec![SimTime::ZERO; n],
            mailbox: (0..n).map(|_| None).collect(),
            calls: vec![0; n],
            model,
            end_time: SimTime::ZERO,
            requests: 0,
        }));

        let mut tasks: Vec<Option<ActorFuture<'a, R>>> = Vec::with_capacity(n);
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut cx = Context::from_waker(Waker::noop());

        // Launch phase: drive every actor to its first timed action (or to
        // completion), in actor-id order, before popping any event.
        for (i, make) in actors.into_iter().enumerate() {
            let ctx = ActorCtx {
                id: ActorId(i),
                rng: Rc::new(RefCell::new(stream_rng(seed, i as u64))),
                state: Rc::clone(&state),
            };
            let mut fut = make(ctx);
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(r) => {
                    results[i] = Some(r);
                    tasks.push(None);
                }
                Poll::Pending => tasks.push(Some(fut)),
            }
        }

        // Event loop: one event at a time, in (time, actor, seq) order.
        loop {
            let popped = state.borrow_mut().heap.pop();
            let Some((k, payload)) = popped else { break };
            let a = k.actor.0;
            match payload {
                Payload::Arrival(req) => {
                    let mut st = state.borrow_mut();
                    st.end_time = k.time;
                    st.requests += 1;
                    let (done, resp) = st.model.handle(k.time, k.actor, req);
                    assert!(
                        done >= k.time,
                        "model completed a request before it arrived"
                    );
                    let dk = EventKey {
                        time: done,
                        actor: k.actor,
                        seq: st.seq[a],
                    };
                    st.seq[a] += 1;
                    st.heap.push(dk, Payload::Deliver(resp));
                }
                Payload::Deliver(resp) => {
                    {
                        let mut st = state.borrow_mut();
                        st.end_time = k.time;
                        st.actor_time[a] = k.time;
                        st.mailbox[a] = Some(Mail::Response(resp));
                    }
                    Self::poll_actor(&mut tasks, &mut results, a, &mut cx);
                }
                Payload::Timer => {
                    {
                        let mut st = state.borrow_mut();
                        st.end_time = k.time;
                        st.actor_time[a] = k.time;
                        st.mailbox[a] = Some(Mail::Timer);
                    }
                    Self::poll_actor(&mut tasks, &mut results, a, &mut cx);
                }
            }
        }

        let blocked = tasks.iter().filter(|t| t.is_some()).count();
        assert!(
            blocked == 0,
            "deadlock: {blocked} live actors blocked with no pending events"
        );
        drop(tasks);
        let state = Rc::try_unwrap(state)
            .ok()
            .expect("actor contexts outlived the simulation")
            .into_inner();
        SimReport {
            model: state.model,
            results: results
                .into_iter()
                .map(|r| r.expect("actor finished without producing a result"))
                .collect(),
            end_time: state.end_time,
            requests: state.requests,
        }
    }

    /// Poll actor `a` after a wakeup was deposited in its mailbox. The
    /// `ExecState` borrow is already released: user code inside the future
    /// is free to touch the heap, clocks and RNG through its own context.
    fn poll_actor<'a, R>(
        tasks: &mut [Option<ActorFuture<'a, R>>],
        results: &mut [Option<R>],
        a: usize,
        cx: &mut Context<'_>,
    ) {
        let fut = tasks[a]
            .as_mut()
            .expect("wakeup delivered to an actor that already finished");
        if let Poll::Ready(r) = fut.as_mut().poll(cx) {
            results[a] = Some(r);
            tasks[a] = None;
        }
    }
}

/// Drive a future to completion on the calling thread by spin-polling with a
/// no-op waker.
///
/// This is the bridge between the async client API and *live mode*: every
/// future produced against a [`crate::threaded`]-free `LiveEnv` (or any
/// environment whose awaits are immediately ready) completes in a bounded
/// number of polls, so the "spin" never actually spins. Futures from a
/// [`VirtualEnv`-style](ActorCtx) context must instead run inside
/// [`Simulation::run`]; polling them here would wait forever for an event
/// loop that is not running.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let mut fut = std::pin::pin!(fut);
    let mut cx = Context::from_waker(Waker::noop());
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => std::thread::yield_now(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A model that echoes the request after a fixed latency plus FIFO
    /// queueing on a single shared server.
    struct EchoModel {
        server: crate::resource::FifoServer,
        service: Duration,
        handled: Vec<(u64, usize, u32)>,
    }

    impl Model for EchoModel {
        type Req = u32;
        type Resp = (u32, SimTime);
        fn handle(&mut self, now: SimTime, actor: ActorId, req: u32) -> (SimTime, Self::Resp) {
            self.handled.push((now.as_nanos(), actor.0, req));
            let (_, end) = self.server.admit(now, self.service);
            (end, (req, end))
        }
    }

    fn echo(service_ms: u64) -> EchoModel {
        EchoModel {
            server: crate::resource::FifoServer::new(),
            service: Duration::from_millis(service_ms),
            handled: Vec::new(),
        }
    }

    #[test]
    fn sleep_advances_virtual_clock() {
        let sim = Simulation::new(echo(1), 0);
        let report = sim.run_workers(1, |ctx| async move {
            assert_eq!(ctx.now(), SimTime::ZERO);
            ctx.sleep(Duration::from_secs(5)).await;
            assert_eq!(ctx.now(), SimTime::from_secs(5));
            ctx.sleep(Duration::from_millis(1)).await;
            ctx.now()
        });
        assert_eq!(report.results[0], SimTime::from_millis(5_001));
        assert_eq!(report.end_time, SimTime::from_millis(5_001));
        assert_eq!(report.requests, 0);
    }

    #[test]
    fn call_returns_model_response_and_advances_clock() {
        let sim = Simulation::new(echo(10), 0);
        let report = sim.run_workers(1, |ctx| async move {
            let (val, done) = ctx.call(7).await;
            assert_eq!(val, 7);
            assert_eq!(done, SimTime::from_millis(10));
            assert_eq!(ctx.now(), done);
            assert_eq!(ctx.call_count(), 1);
        });
        assert_eq!(report.requests, 1);
        assert_eq!(report.model.handled, vec![(0, 0, 7)]);
    }

    #[test]
    fn shared_server_queues_concurrent_actors() {
        // Two actors call at t=0; the single server serializes them: one
        // completes at 10 ms, the other at 20 ms.
        let sim = Simulation::new(echo(10), 0);
        let report = sim.run_workers(2, |ctx| async move {
            let (_, done) = ctx.call(ctx.id().0 as u32).await;
            done
        });
        let mut ends: Vec<u64> = report.results.iter().map(|t| t.as_nanos()).collect();
        ends.sort_unstable();
        assert_eq!(
            ends,
            vec![
                SimTime::from_millis(10).as_nanos(),
                SimTime::from_millis(20).as_nanos()
            ]
        );
        // Arrivals were both at t=0, in actor-id order (deterministic ties).
        assert_eq!(report.model.handled, vec![(0, 0, 0), (0, 1, 1)]);
    }

    #[test]
    fn sequential_calls_from_one_actor_pipeline_correctly() {
        let sim = Simulation::new(echo(5), 0);
        let report = sim.run_workers(1, |ctx| async move {
            let mut ends = Vec::new();
            for i in 0..3 {
                let (_, done) = ctx.call(i).await;
                ends.push(done.as_nanos());
            }
            ends
        });
        assert_eq!(
            report.results[0],
            vec![
                SimTime::from_millis(5).as_nanos(),
                SimTime::from_millis(10).as_nanos(),
                SimTime::from_millis(15).as_nanos()
            ]
        );
    }

    #[test]
    fn heterogeneous_actors_via_run() {
        let sim = Simulation::new(echo(1), 0);
        let actors: Vec<ActorFn<'_, EchoModel, u32>> = vec![
            actor(|ctx| async move {
                ctx.sleep(Duration::from_secs(1)).await;
                100
            }),
            actor(|ctx: ActorCtx<EchoModel>| async move { ctx.call(5).await.0 }),
        ];
        let report = sim.run(actors);
        assert_eq!(report.results, vec![100, 5]);
    }

    #[test]
    fn actor_can_finish_without_any_action() {
        let sim = Simulation::new(echo(1), 0);
        let report = sim.run_workers(4, |_ctx| async move { 42u8 });
        assert_eq!(report.results, vec![42; 4]);
        assert_eq!(report.end_time, SimTime::ZERO);
    }

    #[test]
    fn context_clones_share_clock_and_counters() {
        // An environment wrapper holding its own ActorCtx clone must observe
        // the same virtual clock and call count as the actor body's copy.
        let sim = Simulation::new(echo(2), 0);
        let report = sim.run_workers(1, |ctx| async move {
            let env = ctx.clone();
            env.call(1).await;
            assert_eq!(ctx.now(), env.now());
            assert_eq!(ctx.call_count(), 1);
            ctx.sleep(Duration::from_millis(3)).await;
            assert_eq!(env.now(), ctx.now());
            env.now()
        });
        assert_eq!(report.results[0], SimTime::from_millis(5));
    }

    #[test]
    fn deterministic_across_runs() {
        // Many actors with random think times and calls: the full model
        // trace and all results must be identical across runs.
        let run_once = || {
            let sim = Simulation::new(echo(3), 1234);
            let report = sim.run_workers(16, |ctx| async move {
                let mut log = Vec::new();
                for i in 0..20 {
                    let think: u64 = ctx.with_rng(|r| r.random_range(0..5_000));
                    ctx.sleep(Duration::from_micros(think)).await;
                    let (_, done) = ctx.call(i).await;
                    log.push(done.as_nanos());
                }
                log
            });
            (report.model.handled, report.results, report.end_time)
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.0, b.0, "model traces differ");
        assert_eq!(a.1, b.1, "actor results differ");
        assert_eq!(a.2, b.2, "end times differ");
    }

    #[test]
    fn arrivals_reach_model_in_time_order() {
        let sim = Simulation::new(echo(1), 7);
        let report = sim.run_workers(8, |ctx| async move {
            for i in 0..10 {
                let think: u64 = ctx.with_rng(|r| r.random_range(0..2_000));
                ctx.sleep(Duration::from_micros(think)).await;
                ctx.call(i).await;
            }
        });
        let times: Vec<u64> = report.model.handled.iter().map(|h| h.0).collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "arrivals out of order"
        );
        assert_eq!(report.requests, 80);
    }

    #[test]
    fn panicking_actor_propagates_without_deadlock() {
        let sim = Simulation::new(echo(1), 0);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run_workers(3, |ctx| async move {
                if ctx.id().0 == 1 {
                    panic!("boom");
                }
                ctx.sleep(Duration::from_millis(1)).await;
            })
        }));
        assert!(outcome.is_err(), "panic must propagate");
    }

    #[test]
    fn panic_payload_is_the_root_cause_not_the_cascade() {
        let sim = Simulation::new(echo(1), 0);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run_workers(4, |ctx| async move {
                ctx.sleep(Duration::from_millis(1)).await;
                if ctx.id().0 == 2 {
                    panic!("root cause");
                }
                ctx.sleep(Duration::from_secs(1)).await;
            })
        }));
        let payload = match outcome {
            Err(p) => p,
            Ok(_) => panic!("panic must propagate"),
        };
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, "root cause");
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn awaiting_beyond_the_last_event_is_a_deadlock() {
        // A future that returns Pending without scheduling anything can
        // never be woken; the executor must call that out, not hang.
        struct Never;
        impl Future for Never {
            type Output = ();
            fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
                Poll::Pending
            }
        }
        let sim = Simulation::new(echo(1), 0);
        sim.run_workers(1, |_ctx| Never);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        /// Arbitrary per-actor programs of sleeps and calls are (a)
        /// deterministic across runs and (b) respect per-actor clock
        /// monotonicity and model-arrival time ordering.
        #[test]
        fn prop_random_programs_deterministic(
            programs in proptest::collection::vec(
                proptest::collection::vec((proptest::bool::ANY, 0u64..3_000), 0..15),
                1..6),
            seed in 0u64..1_000,
        ) {
            let run = |programs: &Vec<Vec<(bool, u64)>>| {
                let sim = Simulation::new(echo(2), seed);
                let actors: Vec<ActorFn<'_, EchoModel, Vec<u64>>> = programs
                    .iter()
                    .cloned()
                    .map(|prog| {
                        actor(move |ctx: ActorCtx<EchoModel>| async move {
                            let mut times = Vec::new();
                            let mut last = ctx.now();
                            for (is_call, arg) in prog {
                                if is_call {
                                    ctx.call(arg as u32).await;
                                } else {
                                    ctx.sleep(Duration::from_micros(arg)).await;
                                }
                                // Per-actor clock monotonicity.
                                assert!(ctx.now() >= last);
                                last = ctx.now();
                                times.push(ctx.now().as_nanos());
                            }
                            times
                        })
                    })
                    .collect();
                let report = sim.run(actors);
                // Model saw arrivals in non-decreasing time order.
                let arrivals: Vec<u64> = report.model.handled.iter().map(|h| h.0).collect();
                assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
                (report.results, report.end_time, report.requests)
            };
            let a = run(&programs);
            let b = run(&programs);
            proptest::prop_assert_eq!(&a.0, &b.0);
            proptest::prop_assert_eq!(a.1, b.1);
            // Total requests equals the number of `call` steps.
            let calls: u64 = programs.iter()
                .flat_map(|p| p.iter())
                .filter(|(is_call, _)| *is_call)
                .count() as u64;
            proptest::prop_assert_eq!(a.2, calls);
        }

        /// The simulation end time equals the latest event fired — never
        /// earlier than any actor's final clock.
        #[test]
        fn prop_end_time_bounds_actor_clocks(
            sleeps in proptest::collection::vec(0u64..5_000, 1..8)
        ) {
            let sim = Simulation::new(echo(1), 3);
            let sleeps2 = sleeps.clone();
            let actors: Vec<ActorFn<'_, EchoModel, SimTime>> = sleeps2
                .into_iter()
                .map(|us| {
                    actor(move |ctx: ActorCtx<EchoModel>| async move {
                        ctx.sleep(Duration::from_micros(us)).await;
                        ctx.call(1).await;
                        ctx.now()
                    })
                })
                .collect();
            let report = sim.run(actors);
            let max_clock = report.results.iter().max().copied().unwrap();
            proptest::prop_assert_eq!(report.end_time, max_clock);
        }
    }

    #[test]
    fn per_actor_rngs_differ_but_are_reproducible() {
        let draws = |seed| {
            let sim = Simulation::new(echo(1), seed);
            let report =
                sim.run_workers(3, |ctx| async move { ctx.with_rng(|r| r.random::<u64>()) });
            report.results
        };
        let a = draws(5);
        let b = draws(5);
        let c = draws(6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn block_on_completes_ready_chains() {
        assert_eq!(block_on(async { 1 + 2 }), 3);
        assert_eq!(
            block_on(async {
                let a = std::future::ready(40).await;
                a + std::future::ready(2).await
            }),
            42
        );
    }
}
