//! Stackless-coroutine virtual-time executor.
//!
//! Benchmark code in this project looks exactly like the paper's worker-role
//! code: ordinary sequential calls such as `queue.put_message(..).await` and
//! `ctx.sleep(Duration::from_secs(1)).await`. Each simulated role instance
//! is a **future** (an [`ActorFn`] body), not an OS thread: the event heap
//! drives polling directly, so a handoff between two actors is a function
//! call instead of a mutex/condvar round-trip.
//!
//! ## Polling discipline
//!
//! The executor is single-threaded and owns all scheduler state — the event
//! heap, per-actor clocks and sequence counters, the model itself — in one
//! [`ExecState`] behind a `RefCell`. Execution proceeds in two phases:
//!
//! 1. **Launch.** Every actor future is created, then polled once, in
//!    actor-id order, before any event is popped. An actor runs until its
//!    first timed action (`call`/`sleep`), whose future pushes one event
//!    keyed `(time, actor, seq)` on its *first* poll and returns `Pending` —
//!    the exact "submit all first events, then pop" discipline of the
//!    one-at-a-time reference interpreter.
//! 2. **Event loop.** Events pop one at a time in `(time, actor, seq)`
//!    order. An `Arrival` is handed to [`Model::handle`] and its response
//!    scheduled as a `Deliver` at the completion time. A `Deliver`/`Timer`
//!    advances the target actor's clock, deposits the wakeup in its mailbox
//!    slot, and polls that actor's future in place with a no-op waker
//!    ([`std::task::Waker::noop`]); the future takes the mail, runs user
//!    code until the next timed action (pushing the next event), and returns
//!    `Pending` again — or completes.
//!
//! ## Virtual partitions and routing
//!
//! A model may declare that a request addresses a specific **virtual
//! partition** ([`Model::partition_of`]); each actor has a *home* partition
//! (its own, by default). A request to the home partition arrives
//! immediately, exactly as before. A request to a *foreign* partition pays a
//! one-way network leg (`hop`) on the way in and again on the reply — the
//! modeled frontend round trip of the cluster. Crucially this is a property
//! of the **virtual plan** (partition structure + hop), never of physical
//! placement: the serial executor applies the same legs as the sharded
//! executor ([`crate::shard`]), so observable histories are identical at
//! every shard count. The hop doubles as the conservative lookahead window
//! that lets shards run ahead of each other without null messages (see
//! `DESIGN.md`).
//!
//! ## Why this is exact and deterministic
//!
//! * User code between two timed actions consumes **zero virtual time** and
//!   runs to quiescence within a single `poll`, so the only place the clock
//!   advances is the event loop.
//! * Events pop in `(time, actor, seq)` order from the [`EventHeap`]; the
//!   per-actor sequence numbers make that order a pure function of the
//!   simulation history. No wakers, no ready-queues, no host-OS scheduling
//!   anywhere in the loop: the executor *is* the one-at-a-time reference
//!   interpreter that the thread-backed executor ([`crate::threaded`]) and
//!   the sharded executor ([`crate::shard`]) are tested against, so all
//!   backends — and therefore all golden figure artifacts — agree
//!   bit-for-bit by construction.
//! * The cluster model ([`Model::handle`]) sees arrivals in non-decreasing
//!   virtual-time order, which makes analytic `next_free` bookkeeping in the
//!   queueing resources exact (see [`crate::resource`]).
//!
//! ## Invariants
//!
//! * Every `Pending` poll of an actor future has pushed exactly one event
//!   for that actor first (enforced by the [`Wait`] future). Hence an empty
//!   heap with unfinished actors is a genuine deadlock and panics.
//! * A `call` pre-allocates *two* sequence numbers — the arrival's and the
//!   reply's. The calling actor is blocked until the reply, so nothing else
//!   can allocate for it in between and the keys are identical to
//!   allocating the reply at arrival-processing time; pre-allocation is what
//!   lets a remote shard schedule the reply without touching the caller's
//!   counter.
//! * A panic in an actor body unwinds straight through the executor to the
//!   caller — single-threaded execution needs no cascade-teardown machinery,
//!   and the payload is always the root cause.
//!
//! Per-actor cost is one future (stored **unboxed** in a contiguous arena
//! for the homogeneous [`Simulation::run_workers`] shape) instead of an OS
//! thread stack, so simulations scale far past the paper's ~100-worker
//! ceiling.

use crate::heap::{EventHeap, EventKey};
use crate::rng::actor_rng;
use crate::time::SimTime;
use rand::rngs::SmallRng;
use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};
use std::time::Duration;

/// Identifies a simulated actor (role instance) within one simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub usize);

/// The simulated world that actors talk to.
///
/// `handle` is invoked by the scheduler when a request *arrives* (in
/// virtual-arrival order) and must return the request's completion time
/// together with its response. Implementations mutate their internal state
/// (storage contents, resource bookkeeping) as a side effect.
///
/// The `Send` supertrait is required by the thread-backed reference executor
/// ([`crate::threaded`]) and by the sharded executor, which moves
/// per-partition sub-models onto shard threads.
pub trait Model: Send {
    /// Request type actors submit via [`ActorCtx::call`].
    type Req: Send;
    /// Response type returned to the actor.
    type Resp: Send;

    /// Process a request arriving at `now` from `actor`; return
    /// `(completion_time, response)` with `completion_time >= now`.
    fn handle(&mut self, now: SimTime, actor: ActorId, req: Self::Req) -> (SimTime, Self::Resp);

    /// The **virtual partition** this request addresses, or `None` for the
    /// calling actor's home partition (the default, and the only answer a
    /// model without partitions ever needs).
    ///
    /// The answer must be a pure function of the request: it decides whether
    /// the cross-partition network legs apply and, on the sharded executor,
    /// which shard processes the arrival. It must therefore be identical on
    /// the whole model and on any sub-model produced by
    /// [`crate::shard::ShardableModel::split`].
    fn partition_of(&self, _req: &Self::Req) -> Option<u32> {
        None
    }
}

/// An event payload.
pub(crate) enum Payload<M: Model> {
    /// A request arriving at the model. `part` is the virtual partition it
    /// addresses; `reply_seq` is the pre-allocated sequence number of the
    /// `Deliver` that will carry the response back to the calling actor
    /// (valid because the caller is blocked until the reply — see the module
    /// invariants).
    Arrival {
        part: u32,
        reply_seq: u64,
        req: M::Req,
    },
    Deliver(M::Resp),
    Timer,
}

/// What the event loop leaves in a woken actor's mailbox slot. The firing
/// time is not carried here: it is already recorded in the actor's clock
/// (`actor_time`) before the actor is polled.
pub(crate) enum Mail<Resp> {
    Response(Resp),
    Timer,
}

/// Routing state for partitioned (and possibly sharded) runs. Absent on
/// plain single-model runs, whose requests all stay on the fast local path.
///
/// The global-indexed tables (`home`, `owner`, `local_rank`) are pure
/// functions of the plan and identical on every shard, so they are built
/// once and `Arc`-shared instead of cloned per shard — at a million actors
/// a per-shard copy would cost megabytes of duplicated, cache-hostile
/// working set.
pub(crate) struct RouteTable<M: Model> {
    /// Each actor's home partition (indexed by **global** actor id).
    pub(crate) home: Arc<Vec<u32>>,
    /// Each actor's dense local index on its owning shard (indexed by
    /// **global** actor id): the rank of the actor among the actors the
    /// owning shard hosts, in ascending global-id order. On the serial
    /// executor (one shard owning everything) this is the identity.
    pub(crate) local_rank: Arc<Vec<u32>>,
    /// partition → local sub-model slot in [`ExecState::models`], or `None`
    /// when the partition is owned by another shard.
    pub(crate) slot: Vec<Option<u32>>,
    /// partition → owning shard.
    pub(crate) owner: Arc<Vec<u32>>,
    /// The shard this executor instance runs (0 on the serial executor,
    /// where every partition is local).
    pub(crate) self_shard: u32,
    /// One-way virtual network leg paid by each direction of a
    /// cross-partition call. Doubles as the conservative lookahead between
    /// shards; `None` forbids cross-partition calls outright.
    pub(crate) hop: Option<Duration>,
    /// Staged cross-shard messages, indexed by destination shard; the
    /// sharded executor flushes these at window barriers. Always empty on
    /// the serial executor.
    pub(crate) outbox: Vec<Vec<(EventKey, Payload<M>)>>,
}

/// All scheduler state, owned by the executor and shared with the per-actor
/// [`ActorCtx`] handles through an `Rc<RefCell<..>>`. Borrows are always
/// transient: the executor drops its borrow before polling an actor, and the
/// [`Wait`] future drops its borrow before returning from `poll`.
///
/// All per-actor vectors are indexed by **dense local** actor index — the
/// store slot of the actor on this executor instance. On the serial
/// executor local index equals global actor id; a shard hosting a quarter
/// of a striped fleet packs its quarter contiguously, so its per-event
/// working set is a quarter of the global arrays rather than a strided
/// walk over all of them ([`RouteTable::local_rank`] maps ids to indices).
pub(crate) struct ExecState<M: Model> {
    pub(crate) heap: EventHeap<Payload<M>>,
    /// Per-actor event sequence counters (tie-break within one instant).
    pub(crate) seq: Vec<u64>,
    /// Per-actor virtual clocks (time of the last wakeup delivered).
    pub(crate) actor_time: Vec<SimTime>,
    /// One slot per actor; the event loop deposits the wakeup here.
    pub(crate) mailbox: Vec<Option<Mail<M::Resp>>>,
    /// Per-actor count of [`ActorCtx::call`]s issued.
    pub(crate) calls: Vec<u64>,
    /// Local partition sub-models. Plain runs have exactly one; a shard has
    /// one per owned partition.
    pub(crate) models: Vec<M>,
    pub(crate) route: Option<RouteTable<M>>,
    pub(crate) end_time: SimTime,
    pub(crate) requests: u64,
    /// Total events popped from this executor's heap.
    pub(crate) events: u64,
    /// When recording, every popped event key (sorted + hashed at the end).
    pub(crate) history: Option<Vec<EventKey>>,
}

impl<M: Model> ExecState<M> {
    pub(crate) fn new(
        n: usize,
        models: Vec<M>,
        route: Option<RouteTable<M>>,
        record: bool,
    ) -> Self {
        ExecState {
            // Steady state keeps ≤2 events in flight per actor (one pending
            // wait plus one in-flight reply).
            heap: EventHeap::with_capacity(2 * n),
            seq: vec![0; n],
            actor_time: vec![SimTime::ZERO; n],
            mailbox: (0..n).map(|_| None).collect(),
            calls: vec![0; n],
            models,
            route,
            end_time: SimTime::ZERO,
            requests: 0,
            events: 0,
            history: record.then(Vec::new),
        }
    }

    /// Pop the earliest local event strictly below `horizon` (unbounded when
    /// `None`), recording it in the event count, end time and — when enabled
    /// — the observable history.
    pub(crate) fn pop_due(&mut self, horizon: Option<SimTime>) -> Option<(EventKey, Payload<M>)> {
        if let (Some(t), Some(h)) = (self.heap.peek_time(), horizon) {
            if t >= h {
                return None;
            }
        }
        let (k, payload) = self.heap.pop()?;
        self.events += 1;
        self.end_time = k.time;
        if let Some(h) = &mut self.history {
            h.push(k);
        }
        Some((k, payload))
    }

    /// Schedule the arrival for a [`ActorCtx::call`]: allocate the arrival
    /// and reply sequence numbers, resolve the target partition, apply the
    /// inbound network leg for a foreign partition, and push either locally
    /// or into the owning shard's outbox. `local` is the caller's dense
    /// local index (its per-actor state); `actor` its global id (the event
    /// key).
    pub(crate) fn push_call(&mut self, actor: ActorId, local: usize, home_slot: u32, req: M::Req) {
        let a = local;
        let seq = self.seq[a];
        self.seq[a] += 2;
        let now = self.actor_time[a];
        let Some(rt) = &mut self.route else {
            let k = EventKey {
                time: now,
                actor,
                seq,
            };
            self.heap.push(
                k,
                Payload::Arrival {
                    part: 0,
                    reply_seq: seq + 1,
                    req,
                },
            );
            return;
        };
        let home = rt.home[actor.0];
        let part = self.models[home_slot as usize]
            .partition_of(&req)
            .unwrap_or(home);
        let delay = if part == home {
            Duration::ZERO
        } else {
            rt.hop.expect(
                "cross-partition call on a plan with no lookahead hop \
                 (ShardPlan::with_hop)",
            )
        };
        let k = EventKey {
            time: now + delay,
            actor,
            seq,
        };
        let payload = Payload::Arrival {
            part,
            reply_seq: seq + 1,
            req,
        };
        let dest = *rt
            .owner
            .get(part as usize)
            .unwrap_or_else(|| panic!("partition_of returned out-of-range partition {part}"));
        if dest == rt.self_shard {
            self.heap.push(k, payload);
        } else {
            rt.outbox[dest as usize].push((k, payload));
        }
    }

    /// Schedule a timer `delay` after `actor`'s clock (`local` is the
    /// actor's dense local index).
    pub(crate) fn push_timer(&mut self, actor: ActorId, local: usize, delay: Duration) {
        let k = EventKey {
            time: self.actor_time[local] + delay,
            actor,
            seq: self.seq[local],
        };
        self.seq[local] += 1;
        self.heap.push(k, Payload::Timer);
    }

    /// Hand an arrival to its partition's sub-model and schedule the reply —
    /// locally, or via the outbox when the calling actor lives on another
    /// shard. The reply pays the outbound network leg iff the arrival paid
    /// the inbound one (a foreign-partition call), keeping the timing a pure
    /// function of the virtual plan.
    pub(crate) fn process_arrival(&mut self, k: EventKey, part: u32, reply_seq: u64, req: M::Req) {
        self.requests += 1;
        let (slot, cross) = match &self.route {
            None => (0, false),
            Some(rt) => (
                rt.slot[part as usize].expect("arrival for a partition not owned by this shard")
                    as usize,
                part != rt.home[k.actor.0],
            ),
        };
        let (done, resp) = self.models[slot].handle(k.time, k.actor, req);
        assert!(
            done >= k.time,
            "model completed a request before it arrived"
        );
        let time = if cross {
            done + self
                .route
                .as_ref()
                .and_then(|rt| rt.hop)
                .expect("cross-partition arrival on a plan with no hop")
        } else {
            done
        };
        let dk = EventKey {
            time,
            actor: k.actor,
            seq: reply_seq,
        };
        let dest_local = match &self.route {
            None => true,
            Some(rt) => rt.owner[rt.home[k.actor.0] as usize] == rt.self_shard,
        };
        if dest_local {
            self.heap.push(dk, Payload::Deliver(resp));
        } else {
            let rt = self.route.as_mut().expect("remote reply requires a route");
            let dest = rt.owner[rt.home[k.actor.0] as usize] as usize;
            rt.outbox[dest].push((dk, Payload::Deliver(resp)));
        }
    }
}

/// FNV-1a over a sequence of event keys — the executor-independent
/// fingerprint of an observable history. Callers sort the keys first so the
/// hash is a function of the event *multiset*, not of pop interleaving.
pub(crate) fn fnv1a_keys(keys: &[EventKey]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for k in keys {
        for w in [k.time.as_nanos(), k.actor.0 as u64, k.seq] {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    h
}

/// The per-executor arena of deterministic actor random streams, indexed by
/// dense local actor index. One allocation per executor instead of one
/// `Rc<RefCell<SmallRng>>` per actor — at a million actors the per-actor
/// boxes were a million launch-time allocations and a pointer chase on
/// every draw.
pub(crate) type RngArena = Rc<RefCell<Vec<SmallRng>>>;

/// Build the RNG arena for the actors with the given **global** ids, in
/// store order. Streams are keyed by the stable global actor id
/// ([`actor_rng`]), never by launch order or placement, so every shard
/// count draws identical per-actor randomness.
pub(crate) fn rng_arena(seed: u64, global_ids: impl Iterator<Item = usize>) -> RngArena {
    Rc::new(RefCell::new(
        global_ids.map(|g| actor_rng(seed, ActorId(g))).collect(),
    ))
}

/// Handle through which an actor body interacts with virtual time.
///
/// Cheap to clone (two `Rc` bumps): clones share the same actor identity,
/// clock, random stream and scheduler state, so an environment wrapper may
/// hold its own copy while the actor body keeps another.
pub struct ActorCtx<M: Model> {
    id: ActorId,
    /// Local slot of this actor's home-partition sub-model (always 0 on
    /// plain runs).
    slot: u32,
    /// Dense local index of this actor on its executor (equals `id.0` on
    /// the serial executor); indexes every per-actor array.
    local: u32,
    rngs: RngArena,
    state: Rc<RefCell<ExecState<M>>>,
}

impl<M: Model> Clone for ActorCtx<M> {
    fn clone(&self) -> Self {
        ActorCtx {
            id: self.id,
            slot: self.slot,
            local: self.local,
            rngs: Rc::clone(&self.rngs),
            state: Rc::clone(&self.state),
        }
    }
}

impl<M: Model> ActorCtx<M> {
    /// Build the context for actor `id` at dense local index `local`.
    pub(crate) fn make(
        id: ActorId,
        slot: u32,
        local: u32,
        rngs: RngArena,
        state: Rc<RefCell<ExecState<M>>>,
    ) -> Self {
        ActorCtx {
            id,
            slot,
            local,
            rngs,
            state,
        }
    }

    /// This actor's id (0-based, dense, global across shards).
    pub fn id(&self) -> ActorId {
        self.id
    }

    /// Current virtual time as observed by this actor.
    pub fn now(&self) -> SimTime {
        self.state.borrow().actor_time[self.local as usize]
    }

    /// Number of [`ActorCtx::call`]s issued so far.
    pub fn call_count(&self) -> u64 {
        self.state.borrow().calls[self.local as usize]
    }

    /// Submit a request to the model and wait (in virtual time) until its
    /// response is delivered.
    pub async fn call(&self, req: M::Req) -> M::Resp {
        self.state.borrow_mut().calls[self.local as usize] += 1;
        match (Wait {
            ctx: self,
            pending: Some(Pending::Call(req)),
        })
        .await
        {
            Mail::Response(resp) => resp,
            Mail::Timer => unreachable!("timer wakeup while awaiting response"),
        }
    }

    /// Advance this actor's clock by `d` without doing any work (the paper's
    /// *think time*, and the 1 s back-off before retrying a throttled
    /// operation).
    pub async fn sleep(&self, d: Duration) {
        match (Wait {
            ctx: self,
            pending: Some(Pending::Sleep(d)),
        })
        .await
        {
            Mail::Timer => {}
            Mail::Response(_) => unreachable!("response wakeup while sleeping"),
        }
    }

    /// Run `f` with this actor's deterministic random stream.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut SmallRng) -> R) -> R {
        f(&mut self.rngs.borrow_mut()[self.local as usize])
    }
}

/// A not-yet-pushed timed action.
enum Pending<M: Model> {
    Call(M::Req),
    Sleep(Duration),
}

/// The one awaitable in the system: on its first poll it pushes the actor's
/// next event and returns `Pending`; when the event loop deposits the wakeup
/// in the actor's mailbox and re-polls, it takes the mail and completes.
struct Wait<'a, M: Model> {
    ctx: &'a ActorCtx<M>,
    pending: Option<Pending<M>>,
}

// `Wait` holds no self-references, and `Pin` never needs to project into the
// payload: the future is safely movable regardless of `M`'s auto traits.
impl<M: Model> Unpin for Wait<'_, M> {}

impl<M: Model> Future for Wait<'_, M> {
    type Output = Mail<M::Resp>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let i = this.ctx.local as usize;
        if let Some(pending) = this.pending.take() {
            let mut st = this.ctx.state.borrow_mut();
            match pending {
                Pending::Call(req) => st.push_call(this.ctx.id, i, this.ctx.slot, req),
                Pending::Sleep(d) => st.push_timer(this.ctx.id, i, d),
            }
            return Poll::Pending;
        }
        match this.ctx.state.borrow_mut().mailbox[i].take() {
            Some(mail) => Poll::Ready(mail),
            // Spurious poll (e.g. via `block_on` on a foreign executor):
            // stay pending until the event loop delivers the wakeup.
            None => Poll::Pending,
        }
    }
}

/// A boxed actor body future.
pub type ActorFuture<'a, R> = Pin<Box<dyn Future<Output = R> + 'a>>;

/// A boxed actor body: receives its context by value, returns a future.
pub type ActorFn<'a, M, R> = Box<dyn FnOnce(ActorCtx<M>) -> ActorFuture<'a, R> + 'a>;

/// Box an async closure into an [`ActorFn`] — sugar for heterogeneous
/// [`Simulation::run`] actor lists:
///
/// ```ignore
/// actors.push(actor(|ctx| async move { ctx.sleep(d).await; 0 }));
/// ```
pub fn actor<'a, M, R, F, Fut>(f: F) -> ActorFn<'a, M, R>
where
    M: Model,
    F: FnOnce(ActorCtx<M>) -> Fut + 'a,
    Fut: Future<Output = R> + 'a,
{
    Box::new(move |ctx| Box::pin(f(ctx)) as ActorFuture<'a, R>)
}

/// Storage for actor futures, polled by store index.
///
/// Two layouts implement it: [`BoxedStore`] (heterogeneous, one allocation
/// per actor) and [`ArenaStore`] (homogeneous, all futures contiguous in one
/// `Vec` — the cache-local layout the worker ladders run on).
pub(crate) trait ActorStore<R> {
    /// Poll live slot `i`; panics if that actor already finished.
    fn poll(&mut self, i: usize, cx: &mut Context<'_>) -> Poll<R>;
    /// Whether slot `i` still holds an unfinished actor.
    fn live(&self, i: usize) -> bool;
    fn len(&self) -> usize;

    fn live_count(&self) -> usize {
        (0..self.len()).filter(|&i| self.live(i)).count()
    }
}

/// One boxed future per slot; finished slots are dropped eagerly.
pub(crate) struct BoxedStore<'a, R> {
    slots: Vec<Option<ActorFuture<'a, R>>>,
}

impl<R> ActorStore<R> for BoxedStore<'_, R> {
    fn poll(&mut self, i: usize, cx: &mut Context<'_>) -> Poll<R> {
        let fut = self.slots[i]
            .as_mut()
            .expect("wakeup delivered to an actor that already finished");
        let polled = fut.as_mut().poll(cx);
        if polled.is_ready() {
            self.slots[i] = None;
        }
        polled
    }

    fn live(&self, i: usize) -> bool {
        self.slots[i].is_some()
    }

    fn len(&self) -> usize {
        self.slots.len()
    }
}

/// All futures of one monomorphic type, stored inline in a single `Vec` —
/// no per-actor box, exact preallocation, and neighbouring actors' state
/// machines share cache lines.
///
/// Pin discipline: every future is pushed **before any future is polled**
/// (`push` panics otherwise), the `Vec` is preallocated to its final
/// capacity and never grows afterwards, and completed futures stay in place
/// until the whole store drops. A stored future therefore never moves after
/// its first poll.
pub(crate) struct ArenaStore<F> {
    slots: Vec<F>,
    done: Vec<bool>,
    polled: bool,
}

impl<F> ArenaStore<F> {
    pub(crate) fn with_capacity(n: usize) -> Self {
        ArenaStore {
            slots: Vec::with_capacity(n),
            done: Vec::with_capacity(n),
            polled: false,
        }
    }

    pub(crate) fn push(&mut self, fut: F) {
        assert!(!self.polled, "arena sealed after the first poll");
        assert!(self.slots.len() < self.slots.capacity(), "arena overflow");
        self.slots.push(fut);
        self.done.push(false);
    }
}

impl<R, F: Future<Output = R>> ActorStore<R> for ArenaStore<F> {
    fn poll(&mut self, i: usize, cx: &mut Context<'_>) -> Poll<R> {
        self.polled = true;
        assert!(
            !self.done[i],
            "wakeup delivered to an actor that already finished"
        );
        // SAFETY: the slot vector reached its final length before any poll
        // (enforced by `push`), within preallocated capacity, and slots are
        // neither removed nor swapped until the store is dropped whole — so
        // the future at `i` never moves between its first poll and its drop.
        let fut = unsafe { Pin::new_unchecked(&mut self.slots[i]) };
        let polled = fut.poll(cx);
        if polled.is_ready() {
            self.done[i] = true;
        }
        polled
    }

    fn live(&self, i: usize) -> bool {
        !self.done[i]
    }

    fn len(&self) -> usize {
        self.slots.len()
    }
}

/// Fire one popped event: hand an `Arrival` to the model, or deposit a
/// wakeup and poll the target actor. `local` is the store index of the
/// event's actor (equal to `k.actor.0` on the serial executor; a shard maps
/// global ids to its dense local indices). Shared by the serial event loop
/// and the sharded window loop so both execute events identically.
pub(crate) fn fire_event<M: Model, R, S: ActorStore<R>>(
    state: &Rc<RefCell<ExecState<M>>>,
    k: EventKey,
    payload: Payload<M>,
    store: &mut S,
    results: &mut [Option<R>],
    local: usize,
    cx: &mut Context<'_>,
) {
    let mail = match payload {
        Payload::Arrival {
            part,
            reply_seq,
            req,
        } => {
            state.borrow_mut().process_arrival(k, part, reply_seq, req);
            return;
        }
        Payload::Deliver(resp) => Mail::Response(resp),
        Payload::Timer => Mail::Timer,
    };
    {
        let mut st = state.borrow_mut();
        st.actor_time[local] = k.time;
        st.mailbox[local] = Some(mail);
    }
    // The `ExecState` borrow is released: user code inside the future is
    // free to touch the heap, clocks and RNG through its own context.
    if let Poll::Ready(r) = store.poll(local, cx) {
        results[local] = Some(r);
    }
}

/// Per-shard lookahead-window statistics from one windowed sharded run.
///
/// Wall-clock-derived metadata, **not** an observable: the adaptive window
/// controller may execute a different number of windows from run to run
/// without perturbing the `(time, actor, seq)` history (see
/// [`crate::shard::WindowTuning`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WindowStats {
    /// Synchronization windows this shard executed.
    pub windows: u64,
    /// Mean lookahead multiple (fraction of the plan's `hop`) across those
    /// windows; 1.0 under fixed tuning.
    pub mean_multiple: f64,
}

/// Outcome of a completed simulation.
pub struct SimReport<M, R> {
    /// The model, with all its end-of-run state and counters.
    pub model: M,
    /// Per-actor results, indexed by actor id.
    pub results: Vec<R>,
    /// Virtual time at which the last event fired.
    pub end_time: SimTime,
    /// Total number of model requests processed.
    pub requests: u64,
    /// Total events fired (arrivals + deliveries + timers).
    pub events: u64,
    /// Events fired per shard (one entry on single-threaded executors).
    pub shard_events: Vec<u64>,
    /// Per-shard window statistics — one entry per shard on sharded runs
    /// (all-zero entries for free-running shards), empty on single-threaded
    /// executors.
    pub window_stats: Vec<WindowStats>,
    /// FNV-1a fingerprint of the sorted `(time, actor, seq)` history, when
    /// recording was requested — the cross-executor equivalence check.
    pub history_hash: Option<u64>,
}

/// A virtual-time simulation: a model plus a master seed.
pub struct Simulation<M: Model> {
    model: M,
    seed: u64,
    route: Option<RouteTable<M>>,
    record: bool,
}

impl<M: Model> Simulation<M> {
    /// Create a simulation over `model` with deterministic seed `seed`.
    pub fn new(model: M, seed: u64) -> Self {
        Simulation {
            model,
            seed,
            route: None,
            record: false,
        }
    }

    /// Record the `(time, actor, seq)` observable history and report its
    /// fingerprint in [`SimReport::history_hash`]. Costs memory proportional
    /// to the event count; meant for differential tests, not benchmarks.
    pub fn record_history(mut self) -> Self {
        self.record = true;
        self
    }

    /// Attach a routing table (built by `crate::shard::ShardPlan::route`):
    /// the serial executor then applies the same virtual-partition network
    /// legs as the sharded executor, making it the reference schedule for
    /// partitioned models.
    pub(crate) fn with_route(mut self, route: RouteTable<M>) -> Self {
        self.route = Some(route);
        self
    }

    /// Run `n` identical workers (the common benchmark shape: the paper
    /// deploys N copies of the same worker role). The worker futures are
    /// stored unboxed in a contiguous arena.
    ///
    /// `body` is called once per actor to *create* its future before any
    /// future is polled; creation code must not interact with virtual time
    /// (every `ActorCtx` method that can is `async` and therefore runs at
    /// poll time).
    pub fn run_workers<R, F, Fut>(self, n: usize, body: F) -> SimReport<M, R>
    where
        F: Fn(ActorCtx<M>) -> Fut,
        Fut: Future<Output = R>,
    {
        let (state, seed) = self.into_state(n);
        let rngs = rng_arena(seed, 0..n);
        let mut store = ArenaStore::with_capacity(n);
        for i in 0..n {
            store.push(body(ActorCtx::make(
                ActorId(i),
                0,
                i as u32,
                Rc::clone(&rngs),
                Rc::clone(&state),
            )));
        }
        execute(state, store)
    }

    /// Run a heterogeneous set of actors (e.g. one web role plus N worker
    /// roles). Actor ids are assigned by position.
    pub fn run<'a, R>(self, actors: Vec<ActorFn<'a, M, R>>) -> SimReport<M, R> {
        let n = actors.len();
        let (state, seed) = self.into_state(n);
        let rngs = rng_arena(seed, 0..n);
        let mut slots = Vec::with_capacity(n);
        for (i, make) in actors.into_iter().enumerate() {
            let ctx = ActorCtx::make(ActorId(i), 0, i as u32, Rc::clone(&rngs), Rc::clone(&state));
            slots.push(Some(make(ctx)));
        }
        execute(state, BoxedStore { slots })
    }

    fn into_state(self, n: usize) -> (Rc<RefCell<ExecState<M>>>, u64) {
        let Simulation {
            model,
            seed,
            route,
            record,
        } = self;
        if let Some(rt) = &route {
            assert_eq!(
                rt.home.len(),
                n,
                "route table sized for a different actor count"
            );
        }
        (
            Rc::new(RefCell::new(ExecState::new(n, vec![model], route, record))),
            seed,
        )
    }
}

/// Launch every actor, drain the event loop, and tear down into a report.
fn execute<M: Model, R, S: ActorStore<R>>(
    state: Rc<RefCell<ExecState<M>>>,
    mut store: S,
) -> SimReport<M, R> {
    let n = store.len();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut cx = Context::from_waker(Waker::noop());

    // Launch phase: drive every actor to its first timed action (or to
    // completion), in actor-id order, before popping any event.
    for (i, result) in results.iter_mut().enumerate() {
        if let Poll::Ready(r) = store.poll(i, &mut cx) {
            *result = Some(r);
        }
    }

    // Event loop: one event at a time, in (time, actor, seq) order. On the
    // serial executor local index == global id by construction (a serial
    // route hosts every actor in ascending id order).
    loop {
        let popped = state.borrow_mut().pop_due(None);
        let Some((k, payload)) = popped else { break };
        fire_event(
            &state,
            k,
            payload,
            &mut store,
            &mut results,
            k.actor.0,
            &mut cx,
        );
    }

    let blocked = store.live_count();
    assert!(
        blocked == 0,
        "deadlock: {blocked} live actors blocked with no pending events"
    );
    drop(store);
    let mut st = Rc::try_unwrap(state)
        .ok()
        .expect("actor contexts outlived the simulation")
        .into_inner();
    let history_hash = st.history.take().map(|mut h| {
        h.sort_unstable();
        fnv1a_keys(&h)
    });
    let model = st.models.pop().expect("simulation lost its model");
    assert!(
        st.models.is_empty(),
        "serial run ended with multiple models"
    );
    SimReport {
        model,
        results: results
            .into_iter()
            .map(|r| r.expect("actor finished without producing a result"))
            .collect(),
        end_time: st.end_time,
        requests: st.requests,
        events: st.events,
        shard_events: vec![st.events],
        window_stats: Vec::new(),
        history_hash,
    }
}

/// Drive a future to completion on the calling thread by spin-polling with a
/// no-op waker.
///
/// This is the bridge between the async client API and *live mode*: every
/// future produced against a [`crate::threaded`]-free `LiveEnv` (or any
/// environment whose awaits are immediately ready) completes in a bounded
/// number of polls, so the "spin" never actually spins. Futures from a
/// [`VirtualEnv`-style](ActorCtx) context must instead run inside
/// [`Simulation::run`]; polling them here would wait forever for an event
/// loop that is not running.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let mut fut = std::pin::pin!(fut);
    let mut cx = Context::from_waker(Waker::noop());
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => std::thread::yield_now(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A model that echoes the request after a fixed latency plus FIFO
    /// queueing on a single shared server.
    struct EchoModel {
        server: crate::resource::FifoServer,
        service: Duration,
        handled: Vec<(u64, usize, u32)>,
    }

    impl Model for EchoModel {
        type Req = u32;
        type Resp = (u32, SimTime);
        fn handle(&mut self, now: SimTime, actor: ActorId, req: u32) -> (SimTime, Self::Resp) {
            self.handled.push((now.as_nanos(), actor.0, req));
            let (_, end) = self.server.admit(now, self.service);
            (end, (req, end))
        }
    }

    fn echo(service_ms: u64) -> EchoModel {
        EchoModel {
            server: crate::resource::FifoServer::new(),
            service: Duration::from_millis(service_ms),
            handled: Vec::new(),
        }
    }

    #[test]
    fn sleep_advances_virtual_clock() {
        let sim = Simulation::new(echo(1), 0);
        let report = sim.run_workers(1, |ctx| async move {
            assert_eq!(ctx.now(), SimTime::ZERO);
            ctx.sleep(Duration::from_secs(5)).await;
            assert_eq!(ctx.now(), SimTime::from_secs(5));
            ctx.sleep(Duration::from_millis(1)).await;
            ctx.now()
        });
        assert_eq!(report.results[0], SimTime::from_millis(5_001));
        assert_eq!(report.end_time, SimTime::from_millis(5_001));
        assert_eq!(report.requests, 0);
        assert_eq!(report.events, 2);
        assert_eq!(report.shard_events, vec![2]);
    }

    #[test]
    fn call_returns_model_response_and_advances_clock() {
        let sim = Simulation::new(echo(10), 0);
        let report = sim.run_workers(1, |ctx| async move {
            let (val, done) = ctx.call(7).await;
            assert_eq!(val, 7);
            assert_eq!(done, SimTime::from_millis(10));
            assert_eq!(ctx.now(), done);
            assert_eq!(ctx.call_count(), 1);
        });
        assert_eq!(report.requests, 1);
        assert_eq!(report.model.handled, vec![(0, 0, 7)]);
        // One arrival plus one delivery.
        assert_eq!(report.events, 2);
    }

    #[test]
    fn shared_server_queues_concurrent_actors() {
        // Two actors call at t=0; the single server serializes them: one
        // completes at 10 ms, the other at 20 ms.
        let sim = Simulation::new(echo(10), 0);
        let report = sim.run_workers(2, |ctx| async move {
            let (_, done) = ctx.call(ctx.id().0 as u32).await;
            done
        });
        let mut ends: Vec<u64> = report.results.iter().map(|t| t.as_nanos()).collect();
        ends.sort_unstable();
        assert_eq!(
            ends,
            vec![
                SimTime::from_millis(10).as_nanos(),
                SimTime::from_millis(20).as_nanos()
            ]
        );
        // Arrivals were both at t=0, in actor-id order (deterministic ties).
        assert_eq!(report.model.handled, vec![(0, 0, 0), (0, 1, 1)]);
    }

    #[test]
    fn sequential_calls_from_one_actor_pipeline_correctly() {
        let sim = Simulation::new(echo(5), 0);
        let report = sim.run_workers(1, |ctx| async move {
            let mut ends = Vec::new();
            for i in 0..3 {
                let (_, done) = ctx.call(i).await;
                ends.push(done.as_nanos());
            }
            ends
        });
        assert_eq!(
            report.results[0],
            vec![
                SimTime::from_millis(5).as_nanos(),
                SimTime::from_millis(10).as_nanos(),
                SimTime::from_millis(15).as_nanos()
            ]
        );
    }

    #[test]
    fn heterogeneous_actors_via_run() {
        let sim = Simulation::new(echo(1), 0);
        let actors: Vec<ActorFn<'_, EchoModel, u32>> = vec![
            actor(|ctx| async move {
                ctx.sleep(Duration::from_secs(1)).await;
                100
            }),
            actor(|ctx: ActorCtx<EchoModel>| async move { ctx.call(5).await.0 }),
        ];
        let report = sim.run(actors);
        assert_eq!(report.results, vec![100, 5]);
    }

    #[test]
    fn actor_can_finish_without_any_action() {
        let sim = Simulation::new(echo(1), 0);
        let report = sim.run_workers(4, |_ctx| async move { 42u8 });
        assert_eq!(report.results, vec![42; 4]);
        assert_eq!(report.end_time, SimTime::ZERO);
        assert_eq!(report.events, 0);
    }

    #[test]
    fn context_clones_share_clock_and_counters() {
        // An environment wrapper holding its own ActorCtx clone must observe
        // the same virtual clock and call count as the actor body's copy.
        let sim = Simulation::new(echo(2), 0);
        let report = sim.run_workers(1, |ctx| async move {
            let env = ctx.clone();
            env.call(1).await;
            assert_eq!(ctx.now(), env.now());
            assert_eq!(ctx.call_count(), 1);
            ctx.sleep(Duration::from_millis(3)).await;
            assert_eq!(env.now(), ctx.now());
            env.now()
        });
        assert_eq!(report.results[0], SimTime::from_millis(5));
    }

    #[test]
    fn deterministic_across_runs() {
        // Many actors with random think times and calls: the full model
        // trace and all results must be identical across runs.
        let run_once = || {
            let sim = Simulation::new(echo(3), 1234).record_history();
            let report = sim.run_workers(16, |ctx| async move {
                let mut log = Vec::new();
                for i in 0..20 {
                    let think: u64 = ctx.with_rng(|r| r.random_range(0..5_000));
                    ctx.sleep(Duration::from_micros(think)).await;
                    let (_, done) = ctx.call(i).await;
                    log.push(done.as_nanos());
                }
                log
            });
            (
                report.model.handled,
                report.results,
                report.end_time,
                report.history_hash,
            )
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.0, b.0, "model traces differ");
        assert_eq!(a.1, b.1, "actor results differ");
        assert_eq!(a.2, b.2, "end times differ");
        assert!(a.3.is_some(), "history hash missing despite record_history");
        assert_eq!(a.3, b.3, "history hashes differ");
    }

    #[test]
    fn arrivals_reach_model_in_time_order() {
        let sim = Simulation::new(echo(1), 7);
        let report = sim.run_workers(8, |ctx| async move {
            for i in 0..10 {
                let think: u64 = ctx.with_rng(|r| r.random_range(0..2_000));
                ctx.sleep(Duration::from_micros(think)).await;
                ctx.call(i).await;
            }
        });
        let times: Vec<u64> = report.model.handled.iter().map(|h| h.0).collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "arrivals out of order"
        );
        assert_eq!(report.requests, 80);
    }

    #[test]
    fn panicking_actor_propagates_without_deadlock() {
        let sim = Simulation::new(echo(1), 0);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run_workers(3, |ctx| async move {
                if ctx.id().0 == 1 {
                    panic!("boom");
                }
                ctx.sleep(Duration::from_millis(1)).await;
            })
        }));
        assert!(outcome.is_err(), "panic must propagate");
    }

    #[test]
    fn panic_payload_is_the_root_cause_not_the_cascade() {
        let sim = Simulation::new(echo(1), 0);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run_workers(4, |ctx| async move {
                ctx.sleep(Duration::from_millis(1)).await;
                if ctx.id().0 == 2 {
                    panic!("root cause");
                }
                ctx.sleep(Duration::from_secs(1)).await;
            })
        }));
        let payload = match outcome {
            Err(p) => p,
            Ok(_) => panic!("panic must propagate"),
        };
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, "root cause");
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn awaiting_beyond_the_last_event_is_a_deadlock() {
        // A future that returns Pending without scheduling anything can
        // never be woken; the executor must call that out, not hang.
        struct Never;
        impl Future for Never {
            type Output = ();
            fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
                Poll::Pending
            }
        }
        let sim = Simulation::new(echo(1), 0);
        sim.run_workers(1, |_ctx| Never);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        /// Arbitrary per-actor programs of sleeps and calls are (a)
        /// deterministic across runs and (b) respect per-actor clock
        /// monotonicity and model-arrival time ordering.
        #[test]
        fn prop_random_programs_deterministic(
            programs in proptest::collection::vec(
                proptest::collection::vec((proptest::bool::ANY, 0u64..3_000), 0..15),
                1..6),
            seed in 0u64..1_000,
        ) {
            let run = |programs: &Vec<Vec<(bool, u64)>>| {
                let sim = Simulation::new(echo(2), seed);
                let actors: Vec<ActorFn<'_, EchoModel, Vec<u64>>> = programs
                    .iter()
                    .cloned()
                    .map(|prog| {
                        actor(move |ctx: ActorCtx<EchoModel>| async move {
                            let mut times = Vec::new();
                            let mut last = ctx.now();
                            for (is_call, arg) in prog {
                                if is_call {
                                    ctx.call(arg as u32).await;
                                } else {
                                    ctx.sleep(Duration::from_micros(arg)).await;
                                }
                                // Per-actor clock monotonicity.
                                assert!(ctx.now() >= last);
                                last = ctx.now();
                                times.push(ctx.now().as_nanos());
                            }
                            times
                        })
                    })
                    .collect();
                let report = sim.run(actors);
                // Model saw arrivals in non-decreasing time order.
                let arrivals: Vec<u64> = report.model.handled.iter().map(|h| h.0).collect();
                assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
                (report.results, report.end_time, report.requests)
            };
            let a = run(&programs);
            let b = run(&programs);
            proptest::prop_assert_eq!(&a.0, &b.0);
            proptest::prop_assert_eq!(a.1, b.1);
            // Total requests equals the number of `call` steps.
            let calls: u64 = programs.iter()
                .flat_map(|p| p.iter())
                .filter(|(is_call, _)| *is_call)
                .count() as u64;
            proptest::prop_assert_eq!(a.2, calls);
        }

        /// The simulation end time equals the latest event fired — never
        /// earlier than any actor's final clock.
        #[test]
        fn prop_end_time_bounds_actor_clocks(
            sleeps in proptest::collection::vec(0u64..5_000, 1..8)
        ) {
            let sim = Simulation::new(echo(1), 3);
            let sleeps2 = sleeps.clone();
            let actors: Vec<ActorFn<'_, EchoModel, SimTime>> = sleeps2
                .into_iter()
                .map(|us| {
                    actor(move |ctx: ActorCtx<EchoModel>| async move {
                        ctx.sleep(Duration::from_micros(us)).await;
                        ctx.call(1).await;
                        ctx.now()
                    })
                })
                .collect();
            let report = sim.run(actors);
            let max_clock = report.results.iter().max().copied().unwrap();
            proptest::prop_assert_eq!(report.end_time, max_clock);
        }

        /// The unboxed arena path (`run_workers`) and the boxed path
        /// (`run`) execute the identical schedule: same results, end time,
        /// event count and observable-history fingerprint.
        #[test]
        fn prop_arena_matches_boxed_store(
            prog in proptest::collection::vec((proptest::bool::ANY, 0u64..2_000), 0..12),
            n in 1usize..6,
            seed in 0u64..500,
        ) {
            let body = |prog: Vec<(bool, u64)>| move |ctx: ActorCtx<EchoModel>| {
                let prog = prog.clone();
                async move {
                let mut acc = 0u64;
                for (is_call, arg) in prog {
                    if is_call {
                        acc = acc.wrapping_add(ctx.call(arg as u32).await.1.as_nanos());
                    } else {
                        ctx.sleep(Duration::from_micros(arg)).await;
                    }
                }
                acc
            }};
            let arena = Simulation::new(echo(2), seed)
                .record_history()
                .run_workers(n, body(prog.clone()));
            let boxed_actors: Vec<ActorFn<'_, EchoModel, u64>> =
                (0..n).map(|_| actor(body(prog.clone()))).collect();
            let boxed = Simulation::new(echo(2), seed)
                .record_history()
                .run(boxed_actors);
            proptest::prop_assert_eq!(arena.results, boxed.results);
            proptest::prop_assert_eq!(arena.end_time, boxed.end_time);
            proptest::prop_assert_eq!(arena.events, boxed.events);
            proptest::prop_assert_eq!(arena.history_hash, boxed.history_hash);
            proptest::prop_assert_eq!(arena.model.handled, boxed.model.handled);
        }
    }

    #[test]
    fn per_actor_rngs_differ_but_are_reproducible() {
        let draws = |seed| {
            let sim = Simulation::new(echo(1), seed);
            let report =
                sim.run_workers(3, |ctx| async move { ctx.with_rng(|r| r.random::<u64>()) });
            report.results
        };
        let a = draws(5);
        let b = draws(5);
        let c = draws(6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn block_on_completes_ready_chains() {
        assert_eq!(block_on(async { 1 + 2 }), 3);
        assert_eq!(
            block_on(async {
                let a = std::future::ready(40).await;
                a + std::future::ready(2).await
            }),
            42
        );
    }

    // ------------------------------------------------------------------
    // Virtual-partition routing on the serial executor.
    // ------------------------------------------------------------------

    /// Request `(target_partition, value)`; fixed service time, no queueing.
    struct PartModel {
        service: Duration,
    }

    impl Model for PartModel {
        type Req = (u32, u32);
        type Resp = u32;
        fn handle(&mut self, now: SimTime, _actor: ActorId, req: (u32, u32)) -> (SimTime, u32) {
            (now + self.service, req.1)
        }
        fn partition_of(&self, req: &(u32, u32)) -> Option<u32> {
            Some(req.0)
        }
    }

    fn two_part_route(hop: Option<Duration>) -> RouteTable<PartModel> {
        RouteTable {
            home: Arc::new(vec![0, 1]),
            local_rank: Arc::new(vec![0, 1]),
            slot: vec![Some(0), Some(0)],
            owner: Arc::new(vec![0, 0]),
            self_shard: 0,
            hop,
            outbox: Vec::new(),
        }
    }

    #[test]
    fn home_partition_calls_pay_no_network_leg() {
        let service = Duration::from_millis(3);
        let report = Simulation::new(PartModel { service }, 0)
            .with_route(two_part_route(Some(Duration::from_millis(1))))
            .run_workers(2, |ctx| async move {
                // Each actor addresses its own home partition.
                ctx.call((ctx.id().0 as u32, 9)).await;
                ctx.now()
            });
        assert_eq!(report.results, vec![SimTime::from_millis(3); 2]);
    }

    #[test]
    fn foreign_partition_calls_pay_hop_each_way() {
        let service = Duration::from_millis(3);
        let hop = Duration::from_millis(1);
        let report = Simulation::new(PartModel { service }, 0)
            .with_route(two_part_route(Some(hop)))
            .run_workers(2, |ctx| async move {
                // Actor 0 calls foreign partition 1; actor 1 stays home.
                let target = 1u32;
                ctx.call((target, 9)).await;
                ctx.now()
            });
        // Actor 0: 1 ms in + 3 ms service + 1 ms back = 5 ms.
        // Actor 1 (home = 1): service only.
        assert_eq!(
            report.results,
            vec![SimTime::from_millis(5), SimTime::from_millis(3)]
        );
    }

    #[test]
    #[should_panic(expected = "cross-partition call")]
    fn foreign_partition_call_without_hop_panics() {
        Simulation::new(
            PartModel {
                service: Duration::from_millis(1),
            },
            0,
        )
        .with_route(two_part_route(None))
        .run_workers(2, |ctx| async move {
            ctx.call((1u32.wrapping_sub(ctx.id().0 as u32), 0)).await;
        });
    }

    #[test]
    fn history_hash_is_order_insensitive_fingerprint() {
        // Same multiset of keys in different order hashes identically after
        // the sort performed by the executor.
        let mut a = vec![
            EventKey {
                time: SimTime(5),
                actor: ActorId(1),
                seq: 0,
            },
            EventKey {
                time: SimTime(2),
                actor: ActorId(0),
                seq: 3,
            },
        ];
        let mut b = vec![a[1], a[0]];
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(fnv1a_keys(&a), fnv1a_keys(&b));
        // And the hash is sensitive to the contents.
        let c = [a[0]];
        assert_ne!(fnv1a_keys(&a), fnv1a_keys(&c));
    }
}
