//! Conservative virtual-time executor.
//!
//! Benchmark code in this project looks exactly like the paper's worker-role
//! code: ordinary sequential calls such as `queue.put_message(..)` and
//! `ctx.sleep(Duration::from_secs(1))`. To run that code against a *modeled*
//! cluster with a *virtual* clock, each simulated role instance is a real OS
//! thread holding an [`ActorCtx`]; every timed action is sent to a
//! coordinator which advances the virtual clock only when **all** actor
//! threads are parked.
//!
//! ## Why this is exact and deterministic
//!
//! * User code between two timed actions consumes **zero virtual time**, so
//!   the only places the clock can advance are inside the coordinator.
//! * The coordinator pops events in `(time, actor, seq)` order from a
//!   [`EventHeap`] and wakes at most one thread at a time, waiting for it to
//!   block again before processing the next event. The interleaving of
//!   simulated actions is therefore a pure function of the simulation, not
//!   of host-OS scheduling.
//! * The cluster model ([`Model::handle`]) sees arrivals in non-decreasing
//!   virtual-time order, which makes analytic `next_free` bookkeeping in the
//!   queueing resources exact (see [`crate::resource`]).
//!
//! A 100-worker benchmark that would take hours of wall-clock time on the
//! real service completes in seconds of host time.

use crate::heap::{EventHeap, EventKey};
use crate::rng::stream_rng;
use crate::time::SimTime;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use rand::rngs::SmallRng;
use std::cell::{Cell, RefCell};
use std::time::Duration;

/// Identifies a simulated actor (role instance) within one simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub usize);

/// The simulated world that actors talk to.
///
/// `handle` is invoked by the coordinator when a request *arrives* (in
/// virtual-arrival order) and must return the request's completion time
/// together with its response. Implementations mutate their internal state
/// (storage contents, resource bookkeeping) as a side effect.
pub trait Model: Send {
    /// Request type actors submit via [`ActorCtx::call`].
    type Req: Send;
    /// Response type returned to the actor.
    type Resp: Send;

    /// Process a request arriving at `now` from `actor`; return
    /// `(completion_time, response)` with `completion_time >= now`.
    fn handle(&mut self, now: SimTime, actor: ActorId, req: Self::Req) -> (SimTime, Self::Resp);
}

enum Action<Req> {
    Call(Req),
    Sleep(Duration),
    Finished,
}

struct ToCoord<Req> {
    actor: usize,
    action: Action<Req>,
}

enum Wakeup<Resp> {
    Response(SimTime, Resp),
    Timer(SimTime),
}

/// Handle through which an actor thread interacts with virtual time.
///
/// Not `Sync`: each actor owns exactly one context.
pub struct ActorCtx<M: Model> {
    id: usize,
    now: Cell<u64>,
    calls: Cell<u64>,
    tx: Sender<ToCoord<M::Req>>,
    rx: Receiver<Wakeup<M::Resp>>,
    rng: RefCell<SmallRng>,
}

impl<M: Model> ActorCtx<M> {
    /// This actor's id (0-based, dense).
    pub fn id(&self) -> ActorId {
        ActorId(self.id)
    }

    /// Current virtual time as observed by this actor.
    pub fn now(&self) -> SimTime {
        SimTime(self.now.get())
    }

    /// Number of [`ActorCtx::call`]s issued so far.
    pub fn call_count(&self) -> u64 {
        self.calls.get()
    }

    /// Submit a request to the model and block (in virtual time) until its
    /// response is delivered.
    pub fn call(&self, req: M::Req) -> M::Resp {
        self.calls.set(self.calls.get() + 1);
        self.tx
            .send(ToCoord {
                actor: self.id,
                action: Action::Call(req),
            })
            .expect("coordinator gone");
        match self.rx.recv().expect("coordinator gone") {
            Wakeup::Response(t, resp) => {
                self.now.set(t.as_nanos());
                resp
            }
            Wakeup::Timer(_) => unreachable!("timer wakeup while awaiting response"),
        }
    }

    /// Advance this actor's clock by `d` without doing any work (the paper's
    /// *think time*, and the 1 s back-off before retrying a throttled
    /// operation).
    pub fn sleep(&self, d: Duration) {
        self.tx
            .send(ToCoord {
                actor: self.id,
                action: Action::Sleep(d),
            })
            .expect("coordinator gone");
        match self.rx.recv().expect("coordinator gone") {
            Wakeup::Timer(t) => self.now.set(t.as_nanos()),
            Wakeup::Response(..) => unreachable!("response wakeup while sleeping"),
        }
    }

    /// Run `f` with this actor's deterministic random stream.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut SmallRng) -> R) -> R {
        f(&mut self.rng.borrow_mut())
    }
}

/// Sends `Finished` to the coordinator when the actor's closure returns *or
/// panics*, so a crashing actor can't deadlock the simulation.
struct FinishGuard<Req> {
    actor: usize,
    tx: Sender<ToCoord<Req>>,
}

impl<Req> Drop for FinishGuard<Req> {
    fn drop(&mut self) {
        // The coordinator may already be gone if it panicked first; ignore.
        let _ = self.tx.send(ToCoord {
            actor: self.actor,
            action: Action::Finished,
        });
    }
}

/// A boxed actor body: receives a context reference, returns a result.
pub type ActorFn<'a, M, R> = Box<dyn FnOnce(&ActorCtx<M>) -> R + Send + 'a>;

/// Outcome of a completed simulation.
pub struct SimReport<M, R> {
    /// The model, with all its end-of-run state and counters.
    pub model: M,
    /// Per-actor results, indexed by actor id.
    pub results: Vec<R>,
    /// Virtual time at which the last event fired.
    pub end_time: SimTime,
    /// Total number of model requests processed.
    pub requests: u64,
}

/// A virtual-time simulation: a model plus a master seed.
pub struct Simulation<M: Model> {
    model: M,
    seed: u64,
}

enum Payload<M: Model> {
    Arrival(M::Req),
    Deliver(M::Resp),
    Timer,
}

impl<M: Model> Simulation<M> {
    /// Create a simulation over `model` with deterministic seed `seed`.
    pub fn new(model: M, seed: u64) -> Self {
        Simulation { model, seed }
    }

    /// Run `n` identical workers (the common benchmark shape: the paper
    /// deploys N copies of the same worker role).
    pub fn run_workers<R, F>(self, n: usize, body: F) -> SimReport<M, R>
    where
        R: Send,
        F: Fn(&ActorCtx<M>) -> R + Send + Sync,
    {
        let body = &body;
        let actors: Vec<ActorFn<'_, M, R>> = (0..n)
            .map(|_| Box::new(move |ctx: &ActorCtx<M>| body(ctx)) as ActorFn<'_, M, R>)
            .collect();
        self.run(actors)
    }

    /// Run a heterogeneous set of actors (e.g. one web role plus N worker
    /// roles). Actor ids are assigned by position.
    pub fn run<'a, R: Send>(mut self, actors: Vec<ActorFn<'a, M, R>>) -> SimReport<M, R> {
        let n = actors.len();
        let (tx, rx) = unbounded::<ToCoord<M::Req>>();
        let mut wake_txs: Vec<Sender<Wakeup<M::Resp>>> = Vec::with_capacity(n);
        let mut ctxs: Vec<ActorCtx<M>> = Vec::with_capacity(n);
        for (i, _) in actors.iter().enumerate() {
            let (wtx, wrx) = bounded::<Wakeup<M::Resp>>(1);
            wake_txs.push(wtx);
            ctxs.push(ActorCtx {
                id: i,
                now: Cell::new(0),
                calls: Cell::new(0),
                tx: tx.clone(),
                rx: wrx,
                rng: RefCell::new(stream_rng(self.seed, i as u64)),
            });
        }
        // The coordinator must observe channel closure only through Finished
        // messages, never rely on sender drops.
        drop(tx);

        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut end_time = SimTime::ZERO;
        let mut requests = 0u64;

        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(n);
            for ((body, ctx), slot) in actors.into_iter().zip(ctxs).zip(&mut results) {
                handles.push(s.spawn(move || {
                    let _guard = FinishGuard {
                        actor: ctx.id,
                        tx: ctx.tx.clone(),
                    };
                    *slot = Some(body(&ctx));
                }));
            }

            let mut heap: EventHeap<Payload<M>> = EventHeap::new();
            let mut seq = vec![0u64; n];
            let mut actor_time = vec![SimTime::ZERO; n];
            let mut running = n;
            let mut live = n;

            while live > 0 {
                // Wait for every running actor to block (or finish).
                while running > 0 {
                    let msg = rx
                        .recv()
                        .expect("all actor channels closed while actors still live");
                    let a = msg.actor;
                    let key = |t: SimTime, seq: &mut Vec<u64>| {
                        let k = EventKey {
                            time: t,
                            actor: ActorId(a),
                            seq: seq[a],
                        };
                        seq[a] += 1;
                        k
                    };
                    match msg.action {
                        Action::Call(req) => {
                            heap.push(key(actor_time[a], &mut seq), Payload::Arrival(req));
                            running -= 1;
                        }
                        Action::Sleep(d) => {
                            heap.push(key(actor_time[a] + d, &mut seq), Payload::Timer);
                            running -= 1;
                        }
                        Action::Finished => {
                            live -= 1;
                            running -= 1;
                        }
                    }
                }
                if live == 0 {
                    break;
                }
                // Everyone is parked: advance virtual time by one event.
                let (k, payload) = heap
                    .pop()
                    .expect("deadlock: live actors blocked with no pending events");
                end_time = k.time;
                let a = k.actor.0;
                match payload {
                    Payload::Arrival(req) => {
                        requests += 1;
                        let (done, resp) = self.model.handle(k.time, k.actor, req);
                        assert!(
                            done >= k.time,
                            "model completed a request before it arrived"
                        );
                        let dk = EventKey {
                            time: done,
                            actor: k.actor,
                            seq: seq[a],
                        };
                        seq[a] += 1;
                        heap.push(dk, Payload::Deliver(resp));
                    }
                    Payload::Deliver(resp) => {
                        actor_time[a] = k.time;
                        wake_txs[a]
                            .send(Wakeup::Response(k.time, resp))
                            .expect("actor thread gone");
                        running += 1;
                    }
                    Payload::Timer => {
                        actor_time[a] = k.time;
                        wake_txs[a]
                            .send(Wakeup::Timer(k.time))
                            .expect("actor thread gone");
                        running += 1;
                    }
                }
            }
            drop(wake_txs);
            for h in handles {
                // Propagate actor panics to the caller.
                if let Err(p) = h.join() {
                    std::panic::resume_unwind(p);
                }
            }
        });

        SimReport {
            model: self.model,
            results: results
                .into_iter()
                .map(|r| r.expect("actor finished without producing a result"))
                .collect(),
            end_time,
            requests,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A model that echoes the request after a fixed latency plus FIFO
    /// queueing on a single shared server.
    struct EchoModel {
        server: crate::resource::FifoServer,
        service: Duration,
        handled: Vec<(u64, usize, u32)>,
    }

    impl Model for EchoModel {
        type Req = u32;
        type Resp = (u32, SimTime);
        fn handle(&mut self, now: SimTime, actor: ActorId, req: u32) -> (SimTime, Self::Resp) {
            self.handled.push((now.as_nanos(), actor.0, req));
            let (_, end) = self.server.admit(now, self.service);
            (end, (req, end))
        }
    }

    fn echo(service_ms: u64) -> EchoModel {
        EchoModel {
            server: crate::resource::FifoServer::new(),
            service: Duration::from_millis(service_ms),
            handled: Vec::new(),
        }
    }

    #[test]
    fn sleep_advances_virtual_clock() {
        let sim = Simulation::new(echo(1), 0);
        let report = sim.run_workers(1, |ctx| {
            assert_eq!(ctx.now(), SimTime::ZERO);
            ctx.sleep(Duration::from_secs(5));
            assert_eq!(ctx.now(), SimTime::from_secs(5));
            ctx.sleep(Duration::from_millis(1));
            ctx.now()
        });
        assert_eq!(report.results[0], SimTime::from_millis(5_001));
        assert_eq!(report.end_time, SimTime::from_millis(5_001));
        assert_eq!(report.requests, 0);
    }

    #[test]
    fn call_returns_model_response_and_advances_clock() {
        let sim = Simulation::new(echo(10), 0);
        let report = sim.run_workers(1, |ctx| {
            let (val, done) = ctx.call(7);
            assert_eq!(val, 7);
            assert_eq!(done, SimTime::from_millis(10));
            assert_eq!(ctx.now(), done);
            assert_eq!(ctx.call_count(), 1);
        });
        assert_eq!(report.requests, 1);
        assert_eq!(report.model.handled, vec![(0, 0, 7)]);
    }

    #[test]
    fn shared_server_queues_concurrent_actors() {
        // Two actors call at t=0; the single server serializes them: one
        // completes at 10 ms, the other at 20 ms.
        let sim = Simulation::new(echo(10), 0);
        let report = sim.run_workers(2, |ctx| {
            let (_, done) = ctx.call(ctx.id().0 as u32);
            done
        });
        let mut ends: Vec<u64> = report.results.iter().map(|t| t.as_nanos()).collect();
        ends.sort_unstable();
        assert_eq!(
            ends,
            vec![
                SimTime::from_millis(10).as_nanos(),
                SimTime::from_millis(20).as_nanos()
            ]
        );
        // Arrivals were both at t=0, in actor-id order (deterministic ties).
        assert_eq!(report.model.handled, vec![(0, 0, 0), (0, 1, 1)]);
    }

    #[test]
    fn sequential_calls_from_one_actor_pipeline_correctly() {
        let sim = Simulation::new(echo(5), 0);
        let report = sim.run_workers(1, |ctx| {
            let mut ends = Vec::new();
            for i in 0..3 {
                let (_, done) = ctx.call(i);
                ends.push(done.as_nanos());
            }
            ends
        });
        assert_eq!(
            report.results[0],
            vec![
                SimTime::from_millis(5).as_nanos(),
                SimTime::from_millis(10).as_nanos(),
                SimTime::from_millis(15).as_nanos()
            ]
        );
    }

    #[test]
    fn heterogeneous_actors_via_run() {
        let sim = Simulation::new(echo(1), 0);
        let actors: Vec<ActorFn<'_, EchoModel, u32>> = vec![
            Box::new(|ctx| {
                ctx.sleep(Duration::from_secs(1));
                100
            }),
            Box::new(|ctx| ctx.call(5).0),
        ];
        let report = sim.run(actors);
        assert_eq!(report.results, vec![100, 5]);
    }

    #[test]
    fn actor_can_finish_without_any_action() {
        let sim = Simulation::new(echo(1), 0);
        let report = sim.run_workers(4, |_ctx| 42u8);
        assert_eq!(report.results, vec![42; 4]);
        assert_eq!(report.end_time, SimTime::ZERO);
    }

    #[test]
    fn deterministic_across_runs() {
        // Many actors with random think times and calls: the full model
        // trace and all results must be identical across runs.
        let run_once = || {
            let sim = Simulation::new(echo(3), 1234);
            let report = sim.run_workers(16, |ctx| {
                let mut log = Vec::new();
                for i in 0..20 {
                    let think: u64 = ctx.with_rng(|r| r.random_range(0..5_000));
                    ctx.sleep(Duration::from_micros(think));
                    let (_, done) = ctx.call(i);
                    log.push(done.as_nanos());
                }
                log
            });
            (report.model.handled, report.results, report.end_time)
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.0, b.0, "model traces differ");
        assert_eq!(a.1, b.1, "actor results differ");
        assert_eq!(a.2, b.2, "end times differ");
    }

    #[test]
    fn arrivals_reach_model_in_time_order() {
        let sim = Simulation::new(echo(1), 7);
        let report = sim.run_workers(8, |ctx| {
            for i in 0..10 {
                let think: u64 = ctx.with_rng(|r| r.random_range(0..2_000));
                ctx.sleep(Duration::from_micros(think));
                ctx.call(i);
            }
        });
        let times: Vec<u64> = report.model.handled.iter().map(|h| h.0).collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "arrivals out of order"
        );
        assert_eq!(report.requests, 80);
    }

    #[test]
    fn panicking_actor_propagates_without_deadlock() {
        let sim = Simulation::new(echo(1), 0);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run_workers(3, |ctx| {
                if ctx.id().0 == 1 {
                    panic!("boom");
                }
                ctx.sleep(Duration::from_millis(1));
            })
        }));
        assert!(outcome.is_err(), "panic must propagate");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        /// Arbitrary per-actor programs of sleeps and calls are (a)
        /// deterministic across runs and (b) respect per-actor clock
        /// monotonicity and model-arrival time ordering.
        #[test]
        fn prop_random_programs_deterministic(
            programs in proptest::collection::vec(
                proptest::collection::vec((proptest::bool::ANY, 0u64..3_000), 0..15),
                1..6),
            seed in 0u64..1_000,
        ) {
            let run = |programs: &Vec<Vec<(bool, u64)>>| {
                let sim = Simulation::new(echo(2), seed);
                let actors: Vec<ActorFn<'_, EchoModel, Vec<u64>>> = programs
                    .iter()
                    .cloned()
                    .map(|prog| {
                        Box::new(move |ctx: &ActorCtx<EchoModel>| {
                            let mut times = Vec::new();
                            let mut last = ctx.now();
                            for (is_call, arg) in prog {
                                if is_call {
                                    ctx.call(arg as u32);
                                } else {
                                    ctx.sleep(Duration::from_micros(arg));
                                }
                                // Per-actor clock monotonicity.
                                assert!(ctx.now() >= last);
                                last = ctx.now();
                                times.push(ctx.now().as_nanos());
                            }
                            times
                        }) as ActorFn<'_, EchoModel, Vec<u64>>
                    })
                    .collect();
                let report = sim.run(actors);
                // Model saw arrivals in non-decreasing time order.
                let arrivals: Vec<u64> = report.model.handled.iter().map(|h| h.0).collect();
                assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
                (report.results, report.end_time, report.requests)
            };
            let a = run(&programs);
            let b = run(&programs);
            proptest::prop_assert_eq!(&a.0, &b.0);
            proptest::prop_assert_eq!(a.1, b.1);
            // Total requests equals the number of `call` steps.
            let calls: u64 = programs.iter()
                .flat_map(|p| p.iter())
                .filter(|(is_call, _)| *is_call)
                .count() as u64;
            proptest::prop_assert_eq!(a.2, calls);
        }

        /// The simulation end time equals the latest event fired — never
        /// earlier than any actor's final clock.
        #[test]
        fn prop_end_time_bounds_actor_clocks(
            sleeps in proptest::collection::vec(0u64..5_000, 1..8)
        ) {
            let sim = Simulation::new(echo(1), 3);
            let sleeps2 = sleeps.clone();
            let actors: Vec<ActorFn<'_, EchoModel, SimTime>> = sleeps2
                .into_iter()
                .map(|us| {
                    Box::new(move |ctx: &ActorCtx<EchoModel>| {
                        ctx.sleep(Duration::from_micros(us));
                        ctx.call(1);
                        ctx.now()
                    }) as ActorFn<'_, EchoModel, SimTime>
                })
                .collect();
            let report = sim.run(actors);
            let max_clock = report.results.iter().max().copied().unwrap();
            proptest::prop_assert_eq!(report.end_time, max_clock);
        }
    }

    #[test]
    fn per_actor_rngs_differ_but_are_reproducible() {
        let draws = |seed| {
            let sim = Simulation::new(echo(1), seed);
            let report = sim.run_workers(3, |ctx| ctx.with_rng(|r| r.random::<u64>()));
            report.results
        };
        let a = draws(5);
        let b = draws(5);
        let c = draws(6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a[0], a[1]);
    }
}
