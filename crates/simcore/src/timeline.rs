//! Virtual-time telemetry: gauge timelines, counter-delta series and
//! saturation tracking.
//!
//! Aggregates (histograms, counters) answer *how much*; a timeline answers
//! *when*. [`GaugeRecorder`] collects samples of registered gauges against
//! the virtual clock and stores them in [`TimeSeries`] buckets of a
//! configurable resolution. Storage is O(1) amortized per sample and
//! bounded for arbitrarily long runs: when a series exceeds its bucket
//! budget it **coarsens by merging** — adjacent buckets are pairwise
//! merged and the resolution doubles, so a series always covers the whole
//! run at the finest resolution its budget allows. An optional **adaptive
//! global budget** ([`GaugeRecorder::with_adaptive_budget`]) additionally
//! bounds the total across all series: when exceeded, every series
//! shrinks to its fair share, so per-series resolution degrades with
//! observed sample rate instead of capping how many series may exist.
//!
//! Everything here is passive: recording reads the virtual clock it is
//! handed and never advances or perturbs simulation state. The intended
//! wiring is that a model samples its resources (queue depths, token-bucket
//! fill, inflight counts) through side-effect-free accessors at event
//! arrival times, so enabling a timeline cannot change any simulated
//! outcome.

use crate::time::SimTime;
use std::time::Duration;

/// Handle to a registered gauge series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered counter series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Aggregated samples of one time bucket.
#[derive(Clone, Copy, Debug)]
pub struct Bucket {
    /// Smallest sample in the bucket.
    pub min: f64,
    /// Largest sample in the bucket.
    pub max: f64,
    /// Last sample in the bucket (arrival order).
    pub last: f64,
    /// Sum of samples (for means; for counter series this is the delta).
    pub sum: f64,
    /// Number of samples merged in.
    pub count: u64,
}

impl Bucket {
    fn of(v: f64) -> Self {
        Bucket {
            min: v,
            max: v,
            last: v,
            sum: v,
            count: 1,
        }
    }

    fn push(&mut self, v: f64) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.last = v;
        self.sum += v;
        self.count += 1;
    }

    /// Merge a later bucket into this one (coarsening).
    fn merge(&mut self, other: &Bucket) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.last = other.last;
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Mean of the samples in the bucket.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A bounded, self-coarsening series of time buckets.
///
/// Buckets are stored sparsely as `(bucket_index, stats)` pairs in
/// ascending index order; sampling an empty stretch of virtual time costs
/// nothing. Samples are expected in non-decreasing time order (the event
/// heap delivers arrivals that way); a defensively-handled out-of-order
/// sample merges into the newest bucket.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    resolution_ns: u64,
    max_buckets: usize,
    buckets: Vec<(u64, Bucket)>,
}

impl TimeSeries {
    /// An empty series at the given resolution, keeping at most
    /// `max_buckets` buckets before coarsening.
    pub fn new(resolution: Duration, max_buckets: usize) -> Self {
        TimeSeries {
            resolution_ns: (resolution.as_nanos() as u64).max(1),
            max_buckets: max_buckets.max(2),
            buckets: Vec::new(),
        }
    }

    /// Record one sample at virtual time `t`.
    pub fn record(&mut self, t: SimTime, v: f64) {
        let idx = t.as_nanos() / self.resolution_ns;
        match self.buckets.last_mut() {
            // Same bucket as the previous sample, or a (defensive)
            // out-of-order sample: fold into the newest bucket.
            Some((last_idx, b)) if *last_idx >= idx => b.push(v),
            _ => {
                self.buckets.push((idx, Bucket::of(v)));
                if self.buckets.len() > self.max_buckets {
                    self.coarsen();
                }
            }
        }
    }

    /// Halve the resolution by merging adjacent bucket pairs. Amortized
    /// O(1) per sample: each coarsening halves the bucket count, so a
    /// series of n samples coarsens at most log(n) times over its life.
    fn coarsen(&mut self) {
        self.resolution_ns = self.resolution_ns.saturating_mul(2);
        let mut out: Vec<(u64, Bucket)> = Vec::with_capacity(self.buckets.len() / 2 + 1);
        for (idx, b) in self.buckets.drain(..) {
            let nidx = idx / 2;
            match out.last_mut() {
                Some((i, acc)) if *i == nidx => acc.merge(&b),
                _ => out.push((nidx, b)),
            }
        }
        self.buckets = out;
    }

    /// Tighten the bucket budget to `max` (never below 2) and coarsen
    /// until the series fits. Tightening is permanent: later samples keep
    /// respecting the new budget. Used by [`GaugeRecorder`]'s adaptive
    /// global budget to shrink each series to its fair share.
    pub fn shrink_to(&mut self, max: usize) {
        self.max_buckets = max.max(2);
        while self.buckets.len() > self.max_buckets {
            self.coarsen();
        }
    }

    /// Current bucket width (grows as the series coarsens).
    pub fn resolution(&self) -> Duration {
        Duration::from_nanos(self.resolution_ns)
    }

    /// Number of retained buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether no sample was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Total samples recorded over the series' life.
    pub fn sample_count(&self) -> u64 {
        self.buckets.iter().map(|(_, b)| b.count).sum()
    }

    /// Iterate `(bucket_start_time, bucket)` in time order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &Bucket)> + '_ {
        let res = self.resolution_ns;
        self.buckets
            .iter()
            .map(move |(idx, b)| (SimTime(idx.saturating_mul(res)), b))
    }
}

/// A monotone counter sampled as per-bucket deltas: feed it cumulative
/// totals and each bucket's `sum` holds the increment that landed in that
/// bucket (so `sum / resolution` is a rate).
#[derive(Clone, Debug)]
pub struct CounterSeries {
    last_total: f64,
    series: TimeSeries,
}

impl CounterSeries {
    fn new(resolution: Duration, max_buckets: usize) -> Self {
        CounterSeries {
            last_total: 0.0,
            series: TimeSeries::new(resolution, max_buckets),
        }
    }

    /// Record the counter's cumulative value at time `t`; the positive
    /// delta since the previous observation is what lands in the series.
    pub fn record_total(&mut self, t: SimTime, total: f64) {
        let delta = (total - self.last_total).max(0.0);
        self.last_total = total;
        self.series.record(t, delta);
    }

    /// Tighten the underlying series' bucket budget (see
    /// [`TimeSeries::shrink_to`]).
    pub fn shrink_to(&mut self, max: usize) {
        self.series.shrink_to(max);
    }

    /// The delta series.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }
}

/// A discrete event on the timeline (fault window edges, breaker
/// transitions, retry storms).
#[derive(Clone, Debug)]
pub struct TimelineEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Event kind (stable snake_case, e.g. `breaker_open`).
    pub kind: String,
    /// Free-form label (partition, fault description, …).
    pub label: String,
}

/// One registered gauge with its series.
#[derive(Clone, Debug)]
pub struct GaugeSeries {
    /// Stable series name (e.g. `account_tx.fill`).
    pub name: String,
    /// Unit label (e.g. `tokens`, `ops`, `seconds`).
    pub unit: String,
    /// The samples.
    pub series: TimeSeries,
}

/// One registered counter with its delta series.
#[derive(Clone, Debug)]
pub struct CounterDeltaSeries {
    /// Stable series name (e.g. `ops.completed`).
    pub name: String,
    /// The per-bucket deltas.
    pub series: CounterSeries,
}

/// The telemetry hub: registered gauges, counters and a bounded event log,
/// all sampled against virtual time.
#[derive(Clone, Debug)]
pub struct GaugeRecorder {
    resolution: Duration,
    max_buckets: usize,
    gauges: Vec<GaugeSeries>,
    counters: Vec<CounterDeltaSeries>,
    events: Vec<TimelineEvent>,
    max_events: usize,
    dropped_events: u64,
    /// Global bucket budget across every series (None: per-series caps
    /// only, the original behavior).
    bucket_budget: Option<usize>,
    /// Running total of live buckets across every series.
    total_buckets: usize,
}

impl GaugeRecorder {
    /// Default bucket budget per series.
    pub const DEFAULT_MAX_BUCKETS: usize = 512;
    /// Default event-log bound.
    pub const DEFAULT_MAX_EVENTS: usize = 4096;

    /// A recorder sampling at the given virtual-time resolution.
    pub fn new(resolution: Duration) -> Self {
        Self::with_limits(
            resolution,
            Self::DEFAULT_MAX_BUCKETS,
            Self::DEFAULT_MAX_EVENTS,
        )
    }

    /// A recorder with explicit bucket and event budgets.
    pub fn with_limits(resolution: Duration, max_buckets: usize, max_events: usize) -> Self {
        GaugeRecorder {
            resolution,
            max_buckets,
            gauges: Vec::new(),
            counters: Vec::new(),
            events: Vec::new(),
            max_events,
            dropped_events: 0,
            bucket_budget: None,
            total_buckets: 0,
        }
    }

    /// Floor below which the adaptive budget never shrinks one series: a
    /// handful of buckets keeps even starved series able to show shape.
    pub const MIN_SERIES_BUCKETS: usize = 8;

    /// Enable the adaptive global bucket budget: the recorder tracks total
    /// buckets across *all* series, and whenever the total exceeds
    /// `total`, every non-empty series shrinks to its fair share
    /// (`total / live_series`, floored at [`Self::MIN_SERIES_BUCKETS`]) by
    /// coarsening its own resolution. A series' resolution thus degrades
    /// with its own sample rate and with global series pressure — memory
    /// stays bounded without any fixed cap on the *number* of series. When
    /// the floor dominates (more than `total / MIN_SERIES_BUCKETS` live
    /// series) the budget is exceeded by at most the floor per series.
    pub fn with_adaptive_budget(mut self, total: usize) -> Self {
        self.bucket_budget = Some(total.max(Self::MIN_SERIES_BUCKETS));
        self
    }

    /// The configured global bucket budget, if adaptive mode is on.
    pub fn bucket_budget(&self) -> Option<usize> {
        self.bucket_budget
    }

    /// Live buckets across every series right now.
    pub fn total_buckets(&self) -> usize {
        self.total_buckets
    }

    /// Account a series' bucket-count change and re-balance if the global
    /// budget is exceeded.
    fn note_growth(&mut self, before: usize, after: usize) {
        self.total_buckets = (self.total_buckets + after).saturating_sub(before);
        if let Some(budget) = self.bucket_budget {
            if self.total_buckets > budget {
                self.enforce_budget(budget);
            }
        }
    }

    /// Shrink every non-empty series to its fair share of the budget.
    fn enforce_budget(&mut self, budget: usize) {
        let live = self.gauges.iter().filter(|g| !g.series.is_empty()).count()
            + self
                .counters
                .iter()
                .filter(|c| !c.series.series().is_empty())
                .count();
        if live == 0 {
            return;
        }
        let fair = (budget / live).clamp(Self::MIN_SERIES_BUCKETS, self.max_buckets.max(2));
        let mut total = 0usize;
        for g in &mut self.gauges {
            g.series.shrink_to(fair);
            total += g.series.len();
        }
        for c in &mut self.counters {
            c.series.shrink_to(fair);
            total += c.series.series().len();
        }
        self.total_buckets = total;
    }

    /// Configured base resolution (individual series may have coarsened).
    pub fn resolution(&self) -> Duration {
        self.resolution
    }

    /// Register a gauge series; the returned id is its stable handle.
    pub fn register_gauge(&mut self, name: impl Into<String>, unit: impl Into<String>) -> GaugeId {
        self.gauges.push(GaugeSeries {
            name: name.into(),
            unit: unit.into(),
            series: TimeSeries::new(self.resolution, self.max_buckets),
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Record one gauge sample.
    pub fn record_gauge(&mut self, id: GaugeId, t: SimTime, v: f64) {
        let before = self.gauges[id.0].series.len();
        self.gauges[id.0].series.record(t, v);
        let after = self.gauges[id.0].series.len();
        self.note_growth(before, after);
    }

    /// Register a counter series (fed cumulative totals).
    pub fn register_counter(&mut self, name: impl Into<String>) -> CounterId {
        self.counters.push(CounterDeltaSeries {
            name: name.into(),
            series: CounterSeries::new(self.resolution, self.max_buckets),
        });
        CounterId(self.counters.len() - 1)
    }

    /// Record a counter's cumulative value.
    pub fn record_counter(&mut self, id: CounterId, t: SimTime, total: f64) {
        let before = self.counters[id.0].series.series().len();
        self.counters[id.0].series.record_total(t, total);
        let after = self.counters[id.0].series.series().len();
        self.note_growth(before, after);
    }

    /// Append a discrete event (bounded; overflow is counted, not kept).
    pub fn push_event(&mut self, at: SimTime, kind: impl Into<String>, label: impl Into<String>) {
        if self.events.len() < self.max_events {
            self.events.push(TimelineEvent {
                at,
                kind: kind.into(),
                label: label.into(),
            });
        } else {
            self.dropped_events += 1;
        }
    }

    /// Registered gauges in registration order.
    pub fn gauges(&self) -> &[GaugeSeries] {
        &self.gauges
    }

    /// Registered counters in registration order.
    pub fn counters(&self) -> &[CounterDeltaSeries] {
        &self.counters
    }

    /// The retained events in arrival order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Events lost to the bound.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }
}

/// Exact time-weighted saturation accounting in O(1) memory.
///
/// Feed it a boolean "is this resource saturated?" observation at every
/// arrival; between observations the last state is carried forward, which
/// is exact for state that only changes at arrivals (as all resources in a
/// discrete-event model do).
#[derive(Clone, Copy, Debug, Default)]
pub struct SaturationTracker {
    started: bool,
    start: SimTime,
    last: SimTime,
    is_sat: bool,
    saturated_ns: u64,
}

impl SaturationTracker {
    /// A tracker that has seen nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe the resource's state at time `now` (non-decreasing).
    pub fn observe(&mut self, now: SimTime, saturated: bool) {
        if !self.started {
            self.started = true;
            self.start = now;
            self.last = now;
        }
        if now > self.last {
            if self.is_sat {
                self.saturated_ns += now.as_nanos() - self.last.as_nanos();
            }
            self.last = now;
        }
        self.is_sat = saturated;
    }

    /// Fraction of `[first_observation, end]` spent saturated. Pure: the
    /// tracker itself is not advanced.
    pub fn fraction(&self, end: SimTime) -> f64 {
        if !self.started {
            return 0.0;
        }
        let mut sat = self.saturated_ns;
        let mut last = self.last;
        if end > last && self.is_sat {
            sat += end.as_nanos() - last.as_nanos();
        }
        if end > last {
            last = end;
        }
        let window = last.as_nanos().saturating_sub(self.start.as_nanos());
        if window == 0 {
            return if self.is_sat { 1.0 } else { 0.0 };
        }
        sat as f64 / window as f64
    }

    /// Whether any observation was made.
    pub fn observed(&self) -> bool {
        self.started
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn series_buckets_by_resolution() {
        let mut s = TimeSeries::new(Duration::from_millis(100), 512);
        s.record(at(10), 1.0);
        s.record(at(20), 3.0);
        s.record(at(150), 5.0);
        assert_eq!(s.len(), 2);
        let buckets: Vec<_> = s.iter().collect();
        assert_eq!(buckets[0].0, SimTime::ZERO);
        assert_eq!(buckets[0].1.count, 2);
        assert_eq!(buckets[0].1.min, 1.0);
        assert_eq!(buckets[0].1.max, 3.0);
        assert_eq!(buckets[0].1.last, 3.0);
        assert_eq!(buckets[0].1.mean(), 2.0);
        assert_eq!(buckets[1].0, at(100));
        assert_eq!(buckets[1].1.last, 5.0);
    }

    #[test]
    fn series_coarsens_by_merging_and_stays_bounded() {
        let mut s = TimeSeries::new(Duration::from_millis(1), 8);
        for i in 0..1000u64 {
            s.record(at(i), i as f64);
        }
        assert!(s.len() <= 8, "bounded: {} buckets", s.len());
        // Coarsening must not lose mass: every sample remains accounted.
        assert_eq!(s.sample_count(), 1000);
        let total: f64 = s.iter().map(|(_, b)| b.sum).sum();
        assert_eq!(total, (0..1000u64).map(|i| i as f64).sum::<f64>());
        // Resolution doubled some number of times from the original 1 ms.
        assert!(s.resolution() > Duration::from_millis(1));
        assert_eq!(s.resolution().as_nanos() % 1_000_000, 0);
        // Buckets stay in ascending time order.
        let times: Vec<_> = s.iter().map(|(t, _)| t).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }

    #[test]
    fn out_of_order_sample_folds_into_newest_bucket() {
        let mut s = TimeSeries::new(Duration::from_millis(10), 512);
        s.record(at(100), 1.0);
        s.record(at(5), 2.0); // defensive path
        assert_eq!(s.len(), 1);
        assert_eq!(s.sample_count(), 2);
    }

    #[test]
    fn counter_series_records_deltas() {
        let mut c = CounterSeries::new(Duration::from_millis(100), 512);
        c.record_total(at(10), 5.0);
        c.record_total(at(50), 12.0);
        c.record_total(at(250), 12.0);
        c.record_total(at(260), 20.0);
        let buckets: Vec<_> = c.series().iter().collect();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].1.sum, 12.0); // 5 + 7
        assert_eq!(buckets[1].1.sum, 8.0); // 0 + 8
    }

    #[test]
    fn recorder_routes_by_id_and_bounds_events() {
        let mut r = GaugeRecorder::with_limits(Duration::from_millis(10), 64, 2);
        let g1 = r.register_gauge("depth", "ops");
        let g2 = r.register_gauge("fill", "tokens");
        let c1 = r.register_counter("ops");
        r.record_gauge(g1, at(1), 4.0);
        r.record_gauge(g2, at(1), 50.0);
        r.record_counter(c1, at(1), 10.0);
        assert_eq!(r.gauges().len(), 2);
        assert_eq!(r.gauges()[0].name, "depth");
        assert_eq!(r.gauges()[0].unit, "ops");
        assert_eq!(r.gauges()[1].series.sample_count(), 1);
        assert_eq!(r.counters()[0].series.series().sample_count(), 1);
        for i in 0..5 {
            r.push_event(at(i), "k", "l");
        }
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.dropped_events(), 3);
    }

    #[test]
    fn adaptive_budget_bounds_total_buckets_across_series() {
        let mut r = GaugeRecorder::new(Duration::from_millis(1)).with_adaptive_budget(1024);
        let ids: Vec<_> = (0..64)
            .map(|i| r.register_gauge(format!("g{i}"), "x"))
            .collect();
        for t in 0..200u64 {
            for &id in &ids {
                r.record_gauge(id, at(t), t as f64);
            }
        }
        let total: usize = r.gauges().iter().map(|g| g.series.len()).sum();
        assert!(total <= 1024, "budget exceeded: {total} buckets");
        assert_eq!(r.total_buckets(), total);
        // No series was dropped and no sample was lost — only coarsened.
        assert_eq!(r.gauges().len(), 64);
        for g in r.gauges() {
            assert_eq!(g.series.sample_count(), 200, "{}", g.name);
        }
    }

    #[test]
    fn hot_series_coarsen_while_cold_series_stay_fine() {
        let mut r = GaugeRecorder::new(Duration::from_millis(1)).with_adaptive_budget(64);
        let hot = r.register_gauge("hot", "x");
        let cold = r.register_gauge("cold", "x");
        r.record_gauge(cold, at(0), 1.0);
        r.record_gauge(cold, at(5), 1.0);
        for t in 0..500u64 {
            r.record_gauge(hot, at(t), 1.0);
        }
        let (hot_s, cold_s) = (&r.gauges()[0].series, &r.gauges()[1].series);
        // The fast sampler absorbed the coarsening; the quiet series kept
        // the base resolution.
        assert!(hot_s.resolution() > cold_s.resolution());
        assert_eq!(cold_s.resolution(), Duration::from_millis(1));
        assert_eq!(hot_s.sample_count(), 500);
    }

    #[test]
    fn without_adaptive_budget_behavior_is_unchanged() {
        let mut adaptive = GaugeRecorder::with_limits(Duration::from_millis(1), 512, 16);
        let mut plain = GaugeRecorder::with_limits(Duration::from_millis(1), 512, 16);
        let a = adaptive.register_gauge("g", "x");
        let p = plain.register_gauge("g", "x");
        for t in 0..300u64 {
            adaptive.record_gauge(a, at(t), t as f64);
            plain.record_gauge(p, at(t), t as f64);
        }
        assert_eq!(
            adaptive.gauges()[0].series.len(),
            plain.gauges()[0].series.len()
        );
        assert_eq!(
            adaptive.gauges()[0].series.resolution(),
            plain.gauges()[0].series.resolution()
        );
        assert_eq!(plain.bucket_budget(), None);
    }

    #[test]
    fn shrink_to_coarsens_and_keeps_mass() {
        let mut s = TimeSeries::new(Duration::from_millis(1), 512);
        for t in 0..100u64 {
            s.record(at(t), 1.0);
        }
        assert_eq!(s.len(), 100);
        s.shrink_to(10);
        assert!(s.len() <= 10, "{} buckets", s.len());
        assert_eq!(s.sample_count(), 100);
        // The tightened budget holds for future samples too.
        for t in 100..300u64 {
            s.record(at(t), 1.0);
        }
        assert!(s.len() <= 10, "{} buckets", s.len());
    }

    #[test]
    fn saturation_fraction_is_time_weighted() {
        let mut t = SaturationTracker::new();
        t.observe(at(0), false);
        t.observe(at(100), true); // [0,100) unsaturated
        t.observe(at(300), false); // [100,300) saturated
                                   // Window [0,400]: 200 ms of 400 ms saturated.
        assert!((t.fraction(at(400)) - 0.5).abs() < 1e-12);
        // `fraction` is pure: asking twice gives the same answer.
        assert_eq!(t.fraction(at(400)), t.fraction(at(400)));
        // Carrying the final (unsaturated) state further dilutes.
        assert!(t.fraction(at(800)) < 0.5);
    }

    #[test]
    fn saturation_carries_last_state_to_end() {
        let mut t = SaturationTracker::new();
        t.observe(at(0), true);
        assert!((t.fraction(at(100)) - 1.0).abs() < 1e-12);
        let empty = SaturationTracker::new();
        assert_eq!(empty.fraction(at(100)), 0.0);
    }
}
