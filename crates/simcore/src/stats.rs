//! Small statistics helpers used across the benchmark harness.

use std::time::Duration;

/// Online mean/min/max/variance accumulator (Welford's algorithm), used for
/// per-operation latency summaries.
#[derive(Clone, Debug)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Default for OnlineStats {
    /// Same as [`OnlineStats::new`]. (A derived `Default` would zero-fill
    /// `min`/`max` instead of starting them at ±∞, silently corrupting any
    /// accumulator created via `entry(..).or_default()`.)
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Record a duration in seconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_secs_f64());
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sample standard deviation (0 for fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }
}

/// Sub-bucket resolution of [`Histogram`]: 2^6 = 64 sub-buckets per octave.
const SUB_BITS: u32 = 6;
const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// HDR-style log-bucketed histogram over non-negative durations in seconds.
///
/// Values are quantized to integer nanoseconds and placed into buckets with
/// [`SUB_BUCKETS`] sub-divisions per power of two, giving a fixed relative
/// quantile error bound of [`Histogram::RELATIVE_ERROR`] (1/128, < 0.8 %)
/// for any value above 128 ns; values at or below 127 ns are exact at
/// nanosecond resolution. Memory is O(log range): at most 3 776 buckets,
/// grown lazily, independent of how many observations are recorded.
///
/// Robustness: NaN and negative inputs count as 0, +∞ and anything above
/// [`Histogram::MAX_SECONDS`] (~584 years) clamp to the top — recording
/// never panics. Merging adds bucket counts, so a merged histogram has
/// *identical* buckets to one built from the concatenated streams: count is
/// conserved exactly and sum up to float rounding, under arbitrary merge
/// trees.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Bucket counts, grown lazily. Index 0 holds observations that
    /// quantize to zero nanoseconds.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    /// Same as [`Histogram::new`] (hand-written for the same ±∞ min/max
    /// reason as [`OnlineStats`]).
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Worst-case relative error of [`Histogram::quantile`] for values in
    /// the logarithmic region (> 127 ns): half a bucket width, 1/128.
    pub const RELATIVE_ERROR: f64 = 1.0 / 128.0;

    /// Largest representable duration in seconds (~584 years); larger and
    /// non-finite inputs clamp here.
    pub const MAX_SECONDS: f64 = 1.8e10;

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Vec::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Map any f64 into the recordable domain [0, MAX_SECONDS].
    fn sanitize(x: f64) -> f64 {
        if x.is_nan() || x <= 0.0 {
            0.0
        } else {
            x.min(Self::MAX_SECONDS)
        }
    }

    /// Bucket index for a non-zero nanosecond value.
    fn index_of(nanos: u64) -> usize {
        debug_assert!(nanos >= 1);
        let msb = 63 - nanos.leading_zeros();
        if msb <= SUB_BITS {
            // Exact region: one bucket per nanosecond below 2^(SUB_BITS+1).
            nanos as usize
        } else {
            // `nanos >> shift` is a 7-bit value in [64, 128): add, don't
            // OR, so its top bit carries into the octave field.
            let shift = msb - SUB_BITS;
            ((shift as usize) << SUB_BITS) + (nanos >> shift) as usize
        }
    }

    /// Midpoint (representative value) of a bucket, in nanoseconds.
    fn bucket_mid_nanos(index: usize) -> f64 {
        if index < 2 * SUB_BUCKETS {
            index as f64
        } else {
            let shift = (index >> SUB_BITS) - 1;
            let low = (((index & (SUB_BUCKETS - 1)) | SUB_BUCKETS) as u64) << shift;
            let width = 1u64 << shift;
            low as f64 + width as f64 / 2.0
        }
    }

    /// Record one observation (seconds). Never panics; see type docs for
    /// how out-of-domain values are clamped.
    pub fn record(&mut self, x: f64) {
        let x = Self::sanitize(x);
        let nanos = (x * 1e9).round() as u64;
        let idx = if nanos == 0 { 0 } else { Self::index_of(nanos) };
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += x;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Record a duration.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_secs_f64());
    }

    /// Merge another histogram into this one (element-wise bucket add).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of (sanitized) observations in seconds — accumulated from
    /// the raw values, not bucket midpoints, so per-phase sums reconcile
    /// with end-to-end sums to float precision.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (0 when empty). Exact, not bucketed.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty). Exact, not bucketed.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Nearest-rank `q`-quantile (0 ≤ q ≤ 1); 0 when empty. Ranks 0 and
    /// n−1 return the exact min/max; interior ranks return the midpoint of
    /// the rank's bucket, within [`Histogram::RELATIVE_ERROR`] of the
    /// exact order statistic.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        if rank == 0 {
            return self.min;
        }
        if rank == self.count - 1 {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if rank < seen {
                let v = Self::bucket_mid_nanos(i) * 1e-9;
                return v.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Per-class quantile recorder. Backed by [`Histogram`], so memory is O(1)
/// in the number of observations (it used to keep every sample in a
/// `Vec<f64>`); quantiles carry the histogram's ≤ 0.8 % relative error.
#[derive(Clone, Debug, Default)]
pub struct Samples {
    hist: Histogram,
}

impl Samples {
    /// An empty recorder.
    pub fn new() -> Self {
        Samples {
            hist: Histogram::new(),
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.hist.record(x);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.hist.count() as usize
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.hist.is_empty()
    }

    /// Merge another recorder into this one.
    pub fn merge(&mut self, other: &Samples) {
        self.hist.merge(&other.hist);
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank; 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        self.hist.quantile(q)
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.hist.mean()
    }

    /// The backing histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
        // Population stddev is 2.0; sample stddev = sqrt(32/7).
        assert!((s.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn default_equals_new_not_zero_fill() {
        // Regression: a derived Default zero-filled min/max, making every
        // `or_default()` accumulator report min = 0 forever.
        let mut s = OnlineStats::default();
        s.record(5.0);
        s.record(9.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zeroed() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.record(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..37] {
            left.record(x);
        }
        for &x in &data[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.stddev() - whole.stddev()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.record(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e.count(), 1);
        assert_eq!(e.mean(), 3.0);
    }

    #[test]
    fn record_duration_converts_to_seconds() {
        let mut s = OnlineStats::new();
        s.record_duration(Duration::from_millis(250));
        assert!((s.mean() - 0.25).abs() < 1e-12);
    }

    /// |got − want| within the histogram's advertised relative error.
    fn close(got: f64, want: f64) -> bool {
        (got - want).abs() <= want.abs() * Histogram::RELATIVE_ERROR + 1e-9
    }

    #[test]
    fn histogram_small_values_are_nanosecond_exact() {
        let mut h = Histogram::new();
        // 1..=100 ns lie in the exact region.
        for n in 1..=100u64 {
            h.record(n as f64 * 1e-9);
        }
        assert_eq!(h.count(), 100);
        // Nearest rank: round(99 * 0.5) = 50 → the 51st smallest value.
        assert!((h.quantile(0.5) - 51e-9).abs() < 1e-12);
        assert!((h.quantile(0.0) - 1e-9).abs() < 1e-15);
        assert!((h.quantile(1.0) - 100e-9).abs() < 1e-15);
    }

    #[test]
    fn histogram_quantiles_within_relative_error() {
        let mut h = Histogram::new();
        let data: Vec<f64> = (1..=10_000).map(|i| i as f64 * 1e-4).collect();
        for &x in &data {
            h.record(x);
        }
        for q in [0.1, 0.5, 0.9, 0.95, 0.99, 0.999] {
            let idx = ((data.len() - 1) as f64 * q).round() as usize;
            assert!(
                close(h.quantile(q), data[idx]),
                "q={q} got={} want={}",
                h.quantile(q),
                data[idx]
            );
        }
        assert_eq!(h.quantile(0.0), 1e-4);
        assert_eq!(h.quantile(1.0), 1.0);
        assert!((h.sum() - data.iter().sum::<f64>()).abs() < 1e-6);
    }

    #[test]
    fn histogram_clamps_pathological_inputs() {
        let mut h = Histogram::new();
        for x in [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -1.0,
            0.0,
            5e-324,
            f64::MAX,
            1e9,
        ] {
            h.record(x);
        }
        assert_eq!(h.count(), 8);
        assert!(h.sum().is_finite());
        for q in [0.0, 0.5, 1.0] {
            assert!(h.quantile(q).is_finite());
        }
        assert!(h.max() <= Histogram::MAX_SECONDS);
        assert_eq!(h.min(), 0.0);
    }

    #[test]
    fn histogram_merge_equals_concatenation() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..500 {
            let x = (i as f64 * 0.37).sin().abs() * 2.5;
            whole.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.sum() - whole.sum()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn samples_quantiles() {
        let mut s = Samples::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.len(), 5);
        assert!(close(s.median(), 3.0));
        // Extreme ranks are exact min/max even under bucketing.
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn samples_empty() {
        let s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    proptest::proptest! {
        /// Merged stats equal whole-stream stats for arbitrary splits.
        #[test]
        fn prop_merge_associative(
            data in proptest::collection::vec(-1e6f64..1e6, 1..300),
            split in 0usize..300
        ) {
            let split = split.min(data.len());
            let mut whole = OnlineStats::new();
            for &x in &data { whole.record(x); }
            let mut l = OnlineStats::new();
            let mut r = OnlineStats::new();
            for &x in &data[..split] { l.record(x); }
            for &x in &data[split..] { r.record(x); }
            l.merge(&r);
            proptest::prop_assert_eq!(l.count(), whole.count());
            proptest::prop_assert!((l.mean() - whole.mean()).abs() < 1e-6);
            proptest::prop_assert!((l.sum() - whole.sum()).abs() < 1e-3);
        }

        /// merge(a, b) answers quantiles within the advertised relative
        /// error of the exact order statistics of the concatenated stream.
        #[test]
        fn prop_hist_merge_quantiles_within_bound(
            a in proptest::collection::vec(0.0f64..50.0, 1..200),
            b in proptest::collection::vec(0.0f64..50.0, 1..200),
        ) {
            let mut ha = Histogram::new();
            for &x in &a { ha.record(x); }
            let mut hb = Histogram::new();
            for &x in &b { hb.record(x); }
            ha.merge(&hb);
            let mut all: Vec<f64> = a.iter().chain(&b).copied().collect();
            all.sort_by(|x, y| x.partial_cmp(y).unwrap());
            proptest::prop_assert_eq!(ha.count(), all.len() as u64);
            for q in [0.0f64, 0.25, 0.5, 0.9, 0.99, 1.0] {
                let want = all[((all.len() - 1) as f64 * q).round() as usize];
                let got = ha.quantile(q);
                proptest::prop_assert!(
                    (got - want).abs() <= want.abs() * Histogram::RELATIVE_ERROR + 1e-9,
                    "q={} got={} want={}", q, got, want
                );
            }
        }

        /// Recording extreme values (0, subnormals, 1e9 s, ±∞, NaN) and
        /// merging never panics, and the count is always conserved.
        #[test]
        fn prop_hist_extremes_never_panic(
            picks in proptest::collection::vec((0u8..8u8, 0.0f64..1e9), 1..100),
            split in 0usize..100,
        ) {
            let values: Vec<f64> = picks.iter().map(|&(k, v)| match k {
                0 => 0.0,
                1 => f64::MIN_POSITIVE,
                2 => 5e-324,          // subnormal
                3 => 1e9,             // a billion seconds
                4 => f64::INFINITY,
                5 => f64::NAN,
                6 => -v,
                _ => v,
            }).collect();
            let split = split.min(values.len());
            let mut l = Histogram::new();
            let mut r = Histogram::new();
            for &x in &values[..split] { l.record(x); }
            for &x in &values[split..] { r.record(x); }
            l.merge(&r);
            proptest::prop_assert_eq!(l.count(), values.len() as u64);
            proptest::prop_assert!(l.sum().is_finite());
            for q in [0.0f64, 0.5, 0.999, 1.0] {
                proptest::prop_assert!(l.quantile(q).is_finite());
            }
        }

        /// Count and sum are conserved under arbitrary merge trees: a left
        /// fold and a pairwise reduction over the same chunks agree.
        #[test]
        fn prop_hist_merge_tree_conserves(
            data in proptest::collection::vec(0.0f64..1e4, 1..256),
            chunk in 1usize..32,
        ) {
            let parts: Vec<Histogram> = data.chunks(chunk).map(|c| {
                let mut h = Histogram::new();
                for &x in c { h.record(x); }
                h
            }).collect();
            let mut left = Histogram::new();
            for p in &parts { left.merge(p); }
            let mut level = parts;
            while level.len() > 1 {
                let mut next = Vec::new();
                for pair in level.chunks(2) {
                    let mut m = pair[0].clone();
                    if let Some(b) = pair.get(1) { m.merge(b); }
                    next.push(m);
                }
                level = next;
            }
            let tree = level.pop().unwrap();
            proptest::prop_assert_eq!(left.count(), data.len() as u64);
            proptest::prop_assert_eq!(tree.count(), left.count());
            proptest::prop_assert!(
                (left.sum() - tree.sum()).abs() <= 1e-6 * left.sum().abs().max(1.0)
            );
            for q in [0.25f64, 0.5, 0.75, 0.99] {
                proptest::prop_assert_eq!(left.quantile(q), tree.quantile(q));
            }
        }
    }
}
