//! Small statistics helpers used across the benchmark harness.

use std::time::Duration;

/// Online mean/min/max/variance accumulator (Welford's algorithm), used for
/// per-operation latency summaries.
#[derive(Clone, Debug)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Default for OnlineStats {
    /// Same as [`OnlineStats::new`]. (A derived `Default` would zero-fill
    /// `min`/`max` instead of starting them at ±∞, silently corrupting any
    /// accumulator created via `entry(..).or_default()`.)
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Record a duration in seconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_secs_f64());
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sample standard deviation (0 for fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }
}

/// Exact-percentile latency recorder: keeps all samples (benchmark runs are
/// at most a few million observations, well within memory).
#[derive(Clone, Debug, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// An empty recorder.
    pub fn new() -> Self {
        Samples {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank; 0 when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = ((self.values.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        self.values[idx]
    }

    /// Median.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
        // Population stddev is 2.0; sample stddev = sqrt(32/7).
        assert!((s.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn default_equals_new_not_zero_fill() {
        // Regression: a derived Default zero-filled min/max, making every
        // `or_default()` accumulator report min = 0 forever.
        let mut s = OnlineStats::default();
        s.record(5.0);
        s.record(9.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zeroed() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.record(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..37] {
            left.record(x);
        }
        for &x in &data[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.stddev() - whole.stddev()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.record(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e.count(), 1);
        assert_eq!(e.mean(), 3.0);
    }

    #[test]
    fn record_duration_converts_to_seconds() {
        let mut s = OnlineStats::new();
        s.record_duration(Duration::from_millis(250));
        assert!((s.mean() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn samples_quantiles() {
        let mut s = Samples::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn samples_empty() {
        let mut s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    proptest::proptest! {
        /// Merged stats equal whole-stream stats for arbitrary splits.
        #[test]
        fn prop_merge_associative(
            data in proptest::collection::vec(-1e6f64..1e6, 1..300),
            split in 0usize..300
        ) {
            let split = split.min(data.len());
            let mut whole = OnlineStats::new();
            for &x in &data { whole.record(x); }
            let mut l = OnlineStats::new();
            let mut r = OnlineStats::new();
            for &x in &data[..split] { l.record(x); }
            for &x in &data[split..] { r.record(x); }
            l.merge(&r);
            proptest::prop_assert_eq!(l.count(), whole.count());
            proptest::prop_assert!((l.mean() - whole.mean()).abs() < 1e-6);
            proptest::prop_assert!((l.sum() - whole.sum()).abs() < 1e-3);
        }
    }
}
