//! Sharded conservative parallel DES executor.
//!
//! The serial coroutine executor ([`crate::runtime::Simulation`]) hits a
//! scaling cliff once the actor population outgrows the cache: one heap, one
//! thread, every event through the same loop. This module shards the event
//! loop across OS threads while reproducing the serial observable history
//! **bit for bit** at every shard count.
//!
//! ## The plan: virtual partitions vs physical shards
//!
//! A [`ShardPlan`] has two independent halves:
//!
//! * **Virtual structure** — every actor has a *home partition*
//!   (`plan.home`), and a request may address a foreign partition
//!   ([`crate::runtime::Model::partition_of`]). A foreign-partition call
//!   pays a one-way network leg (`hop`) inbound and again on the reply —
//!   the modeled frontend round trip. This half determines **all observable
//!   timing**.
//! * **Physical placement** — partitions are assigned to shards
//!   (`plan.placement`); each actor runs on the shard owning its home
//!   partition. This half determines **only which thread fires an event**,
//!   never when.
//!
//!   The serial executor runs the identical virtual structure
//!   ([`Simulation::with_plan`]) with every partition local, so the sharded
//!   run at any shard count replays the same `(time, actor, seq)` event
//!   multiset — checked end-to-end by fingerprint
//!   ([`crate::runtime::SimReport::history_hash`]).
//!
//! ## Conservative synchronization (null-message-free)
//!
//! With lookahead `hop`, shards synchronize in bounded windows — a
//! three-barrier round, no null messages, no rollback:
//!
//! 1. **Flush**: stage every cross-shard message generated last window into
//!    the destination shard's inbox. *(barrier)*
//! 2. **Drain + min-reduce**: push inbox messages into the local heap, then
//!    publish the local next-event time into a shared atomic minimum.
//!    *(barrier)*
//! 3. **Process**: read the global minimum `G`; every shard fires its local
//!    events with `time < G + hop`, staging any cross-shard sends for the
//!    next flush. *(barrier)*
//!
//! **Why no message can arrive below the horizon:** a cross-shard message is
//! only created while processing an event at time `τ`, and both directions
//! of a cross-partition call add `hop`, so its timestamp is `≥ τ + hop`.
//! Every processed event has `τ ≥ G` (the global minimum), hence every
//! in-flight message has `timestamp ≥ G + hop` — at or beyond everyone's
//! horizon. Within the window each shard's events are causally closed: they
//! interact only through same-shard state, which the local heap already
//! fires in exact `(time, actor, seq)` order. The union of per-shard
//! schedules therefore equals the serial schedule (full argument in
//! `DESIGN.md`).
//!
//! The loop terminates when the reduced minimum is `u64::MAX`: every heap,
//! inbox and outbox is empty, so no event exists anywhere.
//!
//! With no lookahead (`hop == None`) cross-partition calls are forbidden
//! and shards **free-run** to completion with zero synchronization — the
//! embarrassingly-parallel shape of the engine-ladder benchmark, where each
//! actor owns its partition.
//!
//! A panicking shard poisons the window barrier so the remaining shards
//! unwind instead of waiting forever; the root-cause payload is re-raised.

use crate::heap::EventKey;
use crate::runtime::{
    fire_event, fnv1a_keys, ActorCtx, ActorId, ActorStore, ArenaStore, ExecState, Model, Payload,
    RouteTable, SimReport, Simulation,
};
use crate::time::SimTime;
use std::cell::RefCell;
use std::future::Future;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::Duration;

/// A model whose state splits cleanly along partition boundaries.
///
/// Contract: for any request `r` with `partition_of(&r) == Some(p)`, the
/// sub-model for `p` produced by `split` must `handle` `r` exactly as the
/// whole model would — same completion time, same response, same state
/// mutation. That holds precisely when no state is shared across partitions,
/// which is what makes parallel execution exact rather than approximate.
pub trait ShardableModel: Model + Sized {
    /// Consume the model, producing one sub-model per partition (indexed by
    /// partition id).
    fn split(self, partitions: u32) -> Vec<Self>;

    /// Reassemble the whole model from sub-models in partition order, for
    /// end-of-run reporting (metrics merges, audits).
    fn merge(parts: Vec<Self>) -> Self;
}

/// The virtual-partition structure and physical placement of one run.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Number of virtual partitions.
    pub partitions: u32,
    /// Each actor's home partition (length = actor count).
    pub home: Vec<u32>,
    /// Number of physical shards (OS threads).
    pub shards: u32,
    /// Owning shard of each partition (length = `partitions`).
    pub placement: Vec<u32>,
    /// One-way cross-partition network leg; doubles as the conservative
    /// lookahead. `None` forbids cross-partition calls (free-run mode).
    pub hop: Option<Duration>,
}

impl ShardPlan {
    /// Everything on one partition and one shard — the plan for fully
    /// coupled models (every storage-account resource shared), where the
    /// differential suite still proves the executor stack end-to-end.
    pub fn colocated(actors: usize) -> Self {
        ShardPlan {
            partitions: 1,
            home: vec![0; actors],
            shards: 1,
            placement: vec![0],
            hop: None,
        }
    }

    /// `partitions` partitions dealt round-robin over `shards` shards, with
    /// actor `a` homed on partition `a % partitions` — the plan for
    /// partition-independent models (one partition per actor stripes the
    /// engine ladder across every core).
    pub fn striped(actors: usize, partitions: u32, shards: u32) -> Self {
        assert!(partitions >= 1, "need at least one partition");
        let home = (0..actors)
            .map(|a| (a % partitions as usize) as u32)
            .collect();
        ShardPlan {
            partitions,
            home,
            shards: 1,
            placement: Vec::new(),
            hop: None,
        }
        .with_shards(shards)
    }

    /// Re-place partitions round-robin over `shards` shards.
    pub fn with_shards(mut self, shards: u32) -> Self {
        assert!(shards >= 1, "need at least one shard");
        self.shards = shards;
        self.placement = (0..self.partitions).map(|p| p % shards).collect();
        self
    }

    /// Set the cross-partition network leg / lookahead window. Must be
    /// positive: the window protocol only makes progress because the horizon
    /// `G + hop` lies strictly beyond the global minimum `G`.
    pub fn with_hop(mut self, hop: Duration) -> Self {
        assert!(hop > Duration::ZERO, "lookahead hop must be positive");
        self.hop = Some(hop);
        self
    }

    /// Number of actors this plan schedules.
    pub fn actors(&self) -> usize {
        self.home.len()
    }

    fn validate(&self) {
        assert!(self.partitions >= 1, "need at least one partition");
        assert!(self.shards >= 1, "need at least one shard");
        assert_eq!(
            self.placement.len(),
            self.partitions as usize,
            "placement must cover every partition"
        );
        for (p, &s) in self.placement.iter().enumerate() {
            assert!(s < self.shards, "partition {p} placed on missing shard {s}");
        }
        for (a, &p) in self.home.iter().enumerate() {
            assert!(
                p < self.partitions,
                "actor {a} homed on missing partition {p}"
            );
        }
    }

    /// Routing table for one shard: locally owned partitions get dense slot
    /// indices in ascending partition order (matching the sub-model order
    /// built by [`ShardedSimulation::run_workers`]).
    fn route_for_shard<M: Model>(&self, shard: u32) -> RouteTable<M> {
        let mut slot = vec![None; self.partitions as usize];
        let mut next = 0u32;
        for (p, &s) in self.placement.iter().enumerate() {
            if s == shard {
                slot[p] = Some(next);
                next += 1;
            }
        }
        RouteTable {
            home: self.home.clone(),
            slot,
            owner: self.placement.clone(),
            self_shard: shard,
            hop: self.hop,
            outbox: (0..self.shards).map(|_| Vec::new()).collect(),
        }
    }

    /// Routing table for the serial reference executor: the identical
    /// virtual structure (homes + hop), with every partition mapped to the
    /// single unsplit model.
    fn serial_route<M: Model>(&self) -> RouteTable<M> {
        RouteTable {
            home: self.home.clone(),
            slot: vec![Some(0); self.partitions as usize],
            owner: vec![0; self.partitions as usize],
            self_shard: 0,
            hop: self.hop,
            outbox: Vec::new(),
        }
    }
}

impl<M: Model> Simulation<M> {
    /// Run the serial executor under `plan`'s **virtual** structure (home
    /// partitions and hop legs), ignoring its physical placement. This is
    /// the pinned reference schedule that every sharded run of the same
    /// plan must reproduce bit-for-bit.
    pub fn with_plan(self, plan: &ShardPlan) -> Self {
        plan.validate();
        self.with_route(plan.serial_route())
    }
}

/// Panic payload used to cascade a teardown to shards parked at the window
/// barrier. Kept as a `&'static str` literal so the root cause can be told
/// apart from the cascade when propagating panics to the caller.
const SHARD_DEAD: &str = "simulation terminated: another shard failed";

fn is_cascade(p: &(dyn std::any::Any + Send)) -> bool {
    p.downcast_ref::<&'static str>() == Some(&SHARD_DEAD)
}

/// A reusable barrier that can be poisoned: a panicking shard marks it so
/// every parked (or later-arriving) shard wakes with `Err` and unwinds
/// instead of waiting forever on a participant that will never arrive.
struct PoisonBarrier {
    state: Mutex<BarrierInner>,
    cvar: Condvar,
    n: usize,
}

struct BarrierInner {
    count: usize,
    generation: u64,
    poisoned: bool,
}

struct Poisoned;

impl PoisonBarrier {
    fn new(n: usize) -> Self {
        PoisonBarrier {
            state: Mutex::new(BarrierInner {
                count: 0,
                generation: 0,
                poisoned: false,
            }),
            cvar: Condvar::new(),
            n,
        }
    }

    fn wait(&self) -> Result<(), Poisoned> {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if st.poisoned {
            return Err(Poisoned);
        }
        st.count += 1;
        if st.count == self.n {
            st.count = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cvar.notify_all();
            return Ok(());
        }
        let gen = st.generation;
        while st.generation == gen && !st.poisoned {
            st = self.cvar.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        if st.poisoned {
            Err(Poisoned)
        } else {
            Ok(())
        }
    }

    fn poison(&self) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.poisoned = true;
        self.cvar.notify_all();
    }
}

/// Poisons the barrier if the owning shard unwinds, so sibling shards never
/// deadlock on a dead participant.
struct PoisonGuard<'a>(&'a PoisonBarrier);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// Events staged for delivery to one shard.
type Staged<M> = Vec<(EventKey, Payload<M>)>;

/// Cross-shard rendezvous state for windowed runs.
struct SyncShared<M: Model> {
    barrier: PoisonBarrier,
    /// Min-reduced next-event time across shards (nanos; `u64::MAX` = none).
    global_min: AtomicU64,
    /// Per-destination message staging, filled during the flush phase.
    inboxes: Vec<Mutex<Staged<M>>>,
}

/// Everything one shard needs to run, built on the coordinating thread and
/// moved onto the shard thread.
struct ShardInput<M: Model> {
    me: u32,
    /// Sub-models of locally owned partitions, in ascending partition order.
    models: Vec<M>,
    /// The partition ids matching `models`.
    local_parts: Vec<u32>,
    /// Global ids of locally homed actors, ascending.
    actors: Vec<usize>,
    route: RouteTable<M>,
}

/// What one shard hands back for merging.
struct ShardOutcome<M, R> {
    models: Vec<M>,
    local_parts: Vec<u32>,
    /// `(global id, result)` per local actor; `None` only when the run is
    /// about to fail the deadlock assertion.
    results: Vec<(usize, Option<R>)>,
    end_time: SimTime,
    requests: u64,
    events: u64,
    history: Option<Vec<EventKey>>,
    blocked: usize,
}

/// A virtual-time simulation executed across shard threads under a
/// [`ShardPlan`]. Same seed and plan semantics ⇒ identical observables to
/// the serial executor, at every shard count.
pub struct ShardedSimulation<M: ShardableModel> {
    model: M,
    seed: u64,
    plan: ShardPlan,
    record: bool,
}

impl<M: ShardableModel> ShardedSimulation<M> {
    /// Create a sharded simulation over `model` with deterministic `seed`.
    pub fn new(model: M, seed: u64, plan: ShardPlan) -> Self {
        plan.validate();
        ShardedSimulation {
            model,
            seed,
            plan,
            record: false,
        }
    }

    /// Record the `(time, actor, seq)` observable history and report its
    /// merged fingerprint in [`SimReport::history_hash`].
    pub fn record_history(mut self) -> Self {
        self.record = true;
        self
    }

    /// Run one identical worker per plan actor (`plan.actors()` of them).
    ///
    /// `body` must be callable from any shard thread (`Sync`); the futures
    /// it creates live and are polled entirely on one shard thread, so they
    /// need not be `Send`.
    pub fn run_workers<R, F, Fut>(self, body: F) -> SimReport<M, R>
    where
        R: Send,
        F: Fn(ActorCtx<M>) -> Fut + Sync,
        Fut: Future<Output = R>,
    {
        let ShardedSimulation {
            model,
            seed,
            plan,
            record,
        } = self;
        let n = plan.actors();
        let shards = plan.shards as usize;
        let parts_total = plan.partitions as usize;

        // Split the model and bucket sub-models + actors by owning shard.
        let mut parts: Vec<Option<M>> =
            model.split(plan.partitions).into_iter().map(Some).collect();
        assert_eq!(
            parts.len(),
            parts_total,
            "split() returned a wrong partition count"
        );
        let mut inputs: Vec<ShardInput<M>> = (0..shards)
            .map(|s| ShardInput {
                me: s as u32,
                models: Vec::new(),
                local_parts: Vec::new(),
                actors: Vec::new(),
                route: plan.route_for_shard(s as u32),
            })
            .collect();
        for (p, part) in parts.iter_mut().enumerate() {
            let s = plan.placement[p] as usize;
            inputs[s]
                .models
                .push(part.take().expect("partition placed twice"));
            inputs[s].local_parts.push(p as u32);
        }
        for (a, &home) in plan.home.iter().enumerate() {
            inputs[plan.placement[home as usize] as usize]
                .actors
                .push(a);
        }

        let outcomes: Vec<ShardOutcome<M, R>> = if shards == 1 {
            // Inline: one populated shard is exactly the serial schedule —
            // no threads, no barriers.
            vec![run_shard(
                inputs.pop().expect("one shard input"),
                seed,
                record,
                n,
                &body,
                None,
                plan.hop,
            )]
        } else if plan.hop.is_none() {
            // Free-run: no cross-partition traffic is possible, so shards
            // are fully independent.
            run_on_threads(inputs, seed, record, n, &body, None, None)
        } else {
            let sync = SyncShared {
                barrier: PoisonBarrier::new(shards),
                global_min: AtomicU64::new(u64::MAX),
                inboxes: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            };
            run_on_threads(inputs, seed, record, n, &body, Some(&sync), plan.hop)
        };

        merge_outcomes(outcomes, n, parts_total, record)
    }
}

/// Spawn one scoped thread per shard, join them all, and re-raise the
/// root-cause panic (preferring it over "another shard failed" cascades).
fn run_on_threads<M, R, F, Fut>(
    inputs: Vec<ShardInput<M>>,
    seed: u64,
    record: bool,
    n: usize,
    body: &F,
    sync: Option<&SyncShared<M>>,
    hop: Option<Duration>,
) -> Vec<ShardOutcome<M, R>>
where
    M: Model,
    R: Send,
    F: Fn(ActorCtx<M>) -> Fut + Sync,
    Fut: Future<Output = R>,
{
    let joined: Vec<Result<ShardOutcome<M, R>, Box<dyn std::any::Any + Send>>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .into_iter()
                .map(|input| {
                    scope.spawn(move || run_shard(input, seed, record, n, body, sync, hop))
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
    let mut outcomes = Vec::with_capacity(joined.len());
    let mut panics = Vec::new();
    for j in joined {
        match j {
            Ok(o) => outcomes.push(o),
            Err(p) => panics.push(p),
        }
    }
    if !panics.is_empty() {
        let root = panics
            .iter()
            .position(|p| !is_cascade(p.as_ref()))
            .unwrap_or(0);
        std::panic::resume_unwind(panics.into_iter().nth(root).expect("root panic index"));
    }
    outcomes
}

/// Run one shard to completion: launch its actors, then drain events —
/// unbounded when unsynchronized, in conservative windows otherwise.
fn run_shard<M, R, F, Fut>(
    input: ShardInput<M>,
    seed: u64,
    record: bool,
    n_total: usize,
    body: &F,
    sync: Option<&SyncShared<M>>,
    hop: Option<Duration>,
) -> ShardOutcome<M, R>
where
    M: Model,
    F: Fn(ActorCtx<M>) -> Fut,
    Fut: Future<Output = R>,
{
    let ShardInput {
        me,
        models,
        local_parts,
        actors,
        route,
    } = input;
    let state = Rc::new(RefCell::new(ExecState::new(
        n_total,
        models,
        Some(route),
        record,
    )));
    let n_local = actors.len();
    let mut store = ArenaStore::with_capacity(n_local);
    let mut local_of = vec![usize::MAX; n_total];
    for (li, &a) in actors.iter().enumerate() {
        local_of[a] = li;
        let slot = {
            let st = state.borrow();
            let rt = st.route.as_ref().expect("shard state always has a route");
            rt.slot[rt.home[a] as usize]
                .expect("actor homed on a partition this shard does not own")
        };
        store.push(body(ActorCtx::make(
            ActorId(a),
            slot,
            seed,
            Rc::clone(&state),
        )));
    }

    let mut results: Vec<Option<R>> = (0..n_local).map(|_| None).collect();
    let mut cx = Context::from_waker(Waker::noop());
    // Launch phase: first poll in ascending global-id order. Cross-shard
    // first calls land in the outbox and flush in the first window.
    for (li, result) in results.iter_mut().enumerate() {
        if let Poll::Ready(r) = store.poll(li, &mut cx) {
            *result = Some(r);
        }
    }

    match sync {
        None => loop {
            let popped = state.borrow_mut().pop_due(None);
            let Some((k, payload)) = popped else { break };
            fire_event(
                &state,
                k,
                payload,
                &mut store,
                &mut results,
                local_of[k.actor.0],
                &mut cx,
            );
        },
        Some(sync) => {
            let hop = hop.expect("windowed sync requires a lookahead hop");
            let _guard = PoisonGuard(&sync.barrier);
            let mut first = true;
            loop {
                // The reduced minimum is reset by shard 0 between windows:
                // after the processing barrier everyone has read it, and no
                // shard can publish a new minimum before the flush barrier
                // (which needs shard 0) passes.
                if me == 0 && !first {
                    sync.global_min.store(u64::MAX, Ordering::SeqCst);
                }
                first = false;
                // Phase 1: flush staged cross-shard messages to inboxes.
                {
                    let mut st = state.borrow_mut();
                    let rt = st.route.as_mut().expect("shard state always has a route");
                    for (dest, msgs) in rt.outbox.iter_mut().enumerate() {
                        if !msgs.is_empty() {
                            sync.inboxes[dest]
                                .lock()
                                .unwrap_or_else(|p| p.into_inner())
                                .append(msgs);
                        }
                    }
                }
                if sync.barrier.wait().is_err() {
                    std::panic::panic_any(SHARD_DEAD);
                }
                // Phase 2: drain our inbox, publish our next-event time.
                {
                    let mut st = state.borrow_mut();
                    let mut inbox = sync.inboxes[me as usize]
                        .lock()
                        .unwrap_or_else(|p| p.into_inner());
                    for (k, payload) in inbox.drain(..) {
                        st.heap.push(k, payload);
                    }
                    drop(inbox);
                    let local_min = st.heap.peek_time().map_or(u64::MAX, |t| t.as_nanos());
                    sync.global_min.fetch_min(local_min, Ordering::SeqCst);
                }
                if sync.barrier.wait().is_err() {
                    std::panic::panic_any(SHARD_DEAD);
                }
                // Phase 3: process strictly below the shared horizon.
                let g = sync.global_min.load(Ordering::SeqCst);
                if g == u64::MAX {
                    // No event in any heap, inbox or outbox: done.
                    break;
                }
                let horizon = SimTime(g) + hop;
                loop {
                    let popped = state.borrow_mut().pop_due(Some(horizon));
                    let Some((k, payload)) = popped else { break };
                    fire_event(
                        &state,
                        k,
                        payload,
                        &mut store,
                        &mut results,
                        local_of[k.actor.0],
                        &mut cx,
                    );
                }
                if sync.barrier.wait().is_err() {
                    std::panic::panic_any(SHARD_DEAD);
                }
            }
        }
    }

    let blocked = store.live_count();
    drop(store);
    let mut st = Rc::try_unwrap(state)
        .ok()
        .expect("actor contexts outlived the simulation")
        .into_inner();
    if let Some(rt) = &st.route {
        debug_assert!(
            rt.outbox.iter().all(|o| o.is_empty()),
            "shard finished with unsent cross-shard messages"
        );
    }
    ShardOutcome {
        models: std::mem::take(&mut st.models),
        local_parts,
        results: actors.into_iter().zip(results).collect(),
        end_time: st.end_time,
        requests: st.requests,
        events: st.events,
        history: st.history.take(),
        blocked,
    }
}

/// Merge per-shard outcomes into one report: reassemble the model in
/// partition order, scatter results back to global actor ids, sum counters,
/// and fingerprint the merged observable history.
fn merge_outcomes<M: ShardableModel, R>(
    outcomes: Vec<ShardOutcome<M, R>>,
    n: usize,
    parts_total: usize,
    record: bool,
) -> SimReport<M, R> {
    let blocked: usize = outcomes.iter().map(|o| o.blocked).sum();
    assert!(
        blocked == 0,
        "deadlock: {blocked} live actors blocked with no pending events"
    );
    let mut parts: Vec<Option<M>> = (0..parts_total).map(|_| None).collect();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut end_time = SimTime::ZERO;
    let mut requests = 0u64;
    let mut events = 0u64;
    let mut shard_events = Vec::with_capacity(outcomes.len());
    let mut history: Vec<EventKey> = Vec::new();
    for o in outcomes {
        shard_events.push(o.events);
        events += o.events;
        requests += o.requests;
        end_time = end_time.max(o.end_time);
        for (&p, m) in o.local_parts.iter().zip(o.models) {
            parts[p as usize] = Some(m);
        }
        for (a, r) in o.results {
            results[a] = r;
        }
        if let Some(h) = o.history {
            history.extend(h);
        }
    }
    let model = M::merge(
        parts
            .into_iter()
            .map(|p| p.expect("partition lost during merge"))
            .collect(),
    );
    let history_hash = record.then(|| {
        history.sort_unstable();
        fnv1a_keys(&history)
    });
    SimReport {
        model,
        results: results
            .into_iter()
            .map(|r| r.expect("actor finished without producing a result"))
            .collect(),
        end_time,
        requests,
        events,
        shard_events,
        history_hash,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::FifoServer;
    use crate::time::SimTime;
    use rand::Rng;

    /// A partition-separable model: one FIFO server per partition, requests
    /// address a target partition explicitly. Splitting hands each sub-model
    /// the real server of its own partition (the others stay fresh and, by
    /// the routing contract, untouched).
    struct PartEcho {
        partitions: u32,
        service: Duration,
        servers: Vec<FifoServer>,
        handled: Vec<u64>,
    }

    impl PartEcho {
        fn new(partitions: u32, service_us: u64) -> Self {
            PartEcho {
                partitions,
                service: Duration::from_micros(service_us),
                servers: (0..partitions).map(|_| FifoServer::new()).collect(),
                handled: vec![0; partitions as usize],
            }
        }
    }

    impl Model for PartEcho {
        type Req = (u32, u32);
        type Resp = (u32, SimTime);

        fn handle(
            &mut self,
            now: SimTime,
            _actor: ActorId,
            req: (u32, u32),
        ) -> (SimTime, Self::Resp) {
            let p = req.0 as usize;
            self.handled[p] += 1;
            let (_, end) = self.servers[p].admit(now, self.service);
            (end, (req.1, end))
        }

        fn partition_of(&self, req: &(u32, u32)) -> Option<u32> {
            Some(req.0)
        }
    }

    impl ShardableModel for PartEcho {
        fn split(mut self, partitions: u32) -> Vec<Self> {
            assert_eq!(partitions, self.partitions, "plan/model partition mismatch");
            (0..partitions as usize)
                .map(|p| {
                    let mut servers: Vec<FifoServer> =
                        (0..partitions).map(|_| FifoServer::new()).collect();
                    std::mem::swap(&mut servers[p], &mut self.servers[p]);
                    let mut handled = vec![0; partitions as usize];
                    handled[p] = self.handled[p];
                    PartEcho {
                        partitions,
                        service: self.service,
                        servers,
                        handled,
                    }
                })
                .collect()
        }

        fn merge(parts: Vec<Self>) -> Self {
            let partitions = parts.len() as u32;
            let service = parts[0].service;
            let mut servers = Vec::with_capacity(parts.len());
            let mut handled = Vec::with_capacity(parts.len());
            for (p, mut part) in parts.into_iter().enumerate() {
                servers.push(std::mem::take(&mut part.servers[p]));
                handled.push(part.handled[p]);
            }
            PartEcho {
                partitions,
                service,
                servers,
                handled,
            }
        }
    }

    type Obs = Vec<(u32, u64)>;

    /// The workload used by the differential tests: a deterministic mix of
    /// home and cross-partition calls, sleeps, and RNG draws, observed as
    /// `(value, completion_nanos)` pairs.
    fn mixed_body(
        partitions: u32,
        rounds: u32,
    ) -> impl Fn(ActorCtx<PartEcho>) -> std::pin::Pin<Box<dyn Future<Output = Obs>>> + Sync {
        move |ctx: ActorCtx<PartEcho>| {
            Box::pin(async move {
                let me = ctx.id().0 as u32;
                let home = me % partitions;
                let mut out = Vec::new();
                for i in 0..rounds {
                    // Cycle through every partition, starting at home.
                    let target = (home + i) % partitions;
                    let jitter: u64 = ctx.with_rng(|r| r.random_range(0..50));
                    ctx.sleep(Duration::from_micros(jitter)).await;
                    let (v, done) = ctx.call((target, me * 1000 + i)).await;
                    out.push((v, done.as_nanos()));
                }
                out
            })
        }
    }

    fn report_fingerprint(
        r: &SimReport<PartEcho, Obs>,
    ) -> (Vec<Obs>, u64, u64, Vec<u64>, Option<u64>) {
        (
            r.results.clone(),
            r.end_time.as_nanos(),
            r.requests,
            r.model.handled.clone(),
            r.history_hash,
        )
    }

    /// The pinned reference: serial executor under the plan's virtual
    /// structure.
    fn serial_reference(
        plan: &ShardPlan,
        actors: usize,
        partitions: u32,
        rounds: u32,
    ) -> SimReport<PartEcho, Obs> {
        Simulation::new(PartEcho::new(partitions, 300), 7)
            .with_plan(plan)
            .record_history()
            .run_workers(actors, mixed_body(partitions, rounds))
    }

    fn sharded(plan: ShardPlan, partitions: u32, rounds: u32) -> SimReport<PartEcho, Obs> {
        let actors = plan.actors();
        assert_eq!(actors, plan.home.len());
        ShardedSimulation::new(PartEcho::new(partitions, 300), 7, plan)
            .record_history()
            .run_workers(mixed_body(partitions, rounds))
    }

    #[test]
    fn single_shard_inline_matches_serial() {
        let plan = ShardPlan::striped(6, 3, 1).with_hop(Duration::from_millis(1));
        let serial = serial_reference(&plan, 6, 3, 8);
        let shd = sharded(plan, 3, 8);
        assert_eq!(report_fingerprint(&serial), report_fingerprint(&shd));
        assert_eq!(shd.shard_events, vec![shd.events]);
    }

    #[test]
    fn windowed_multi_shard_matches_serial_bit_for_bit() {
        let partitions = 4;
        let actors = 8;
        let rounds = 10;
        let base = ShardPlan::striped(actors, partitions, 1).with_hop(Duration::from_millis(1));
        let serial = serial_reference(&base, actors, partitions, rounds);
        for shards in [2u32, 4] {
            let shd = sharded(base.clone().with_shards(shards), partitions, rounds);
            assert_eq!(
                report_fingerprint(&serial),
                report_fingerprint(&shd),
                "observables diverged at {shards} shards"
            );
            assert_eq!(shd.shard_events.len(), shards as usize);
            assert_eq!(shd.shard_events.iter().sum::<u64>(), serial.events);
            assert!(shd.history_hash.is_some());
        }
    }

    #[test]
    fn free_run_striped_matches_serial() {
        // One partition per actor and home-only calls: embarrassingly
        // parallel, no hop, no barriers.
        let actors = 8;
        let partitions = actors as u32;
        let base = ShardPlan::striped(actors, partitions, 1);
        let body = |ctx: ActorCtx<PartEcho>| async move {
            let home = ctx.id().0 as u32;
            let mut acc = 0u64;
            for i in 0..20u32 {
                let (v, done) = ctx.call((home, i)).await;
                acc = acc
                    .wrapping_mul(31)
                    .wrapping_add(v as u64 + done.as_nanos());
            }
            acc
        };
        let serial = Simulation::new(PartEcho::new(partitions, 300), 7)
            .with_plan(&base)
            .record_history()
            .run_workers(actors, body);
        let shd = ShardedSimulation::new(PartEcho::new(partitions, 300), 7, base.with_shards(4))
            .record_history()
            .run_workers(body);
        assert_eq!(serial.results, shd.results);
        assert_eq!(serial.end_time, shd.end_time);
        assert_eq!(serial.history_hash, shd.history_hash);
        assert_eq!(serial.model.handled, shd.model.handled);
        assert_eq!(shd.shard_events.len(), 4);
    }

    #[test]
    fn colocated_plan_with_idle_shards_matches_serial() {
        // One partition, many shards: shards 1..3 own nothing and idle
        // through the window protocol without perturbing the schedule.
        let actors = 5;
        let plan = ShardPlan {
            partitions: 1,
            home: vec![0; actors],
            shards: 1,
            placement: vec![0],
            hop: None,
        }
        .with_shards(4)
        .with_hop(Duration::from_millis(2));
        let serial = serial_reference(&plan, actors, 1, 6);
        let shd = sharded(plan, 1, 6);
        assert_eq!(report_fingerprint(&serial), report_fingerprint(&shd));
        // All events fired on shard 0.
        assert_eq!(shd.shard_events[1..], [0, 0, 0]);
    }

    #[test]
    fn colocated_constructor_is_serial() {
        let plan = ShardPlan::colocated(3);
        assert_eq!((plan.partitions, plan.shards), (1, 1));
        let serial = serial_reference(&plan, 3, 1, 4);
        let shd = sharded(plan, 1, 4);
        assert_eq!(report_fingerprint(&serial), report_fingerprint(&shd));
    }

    #[test]
    #[should_panic(expected = "boom on shard 1")]
    fn panic_in_one_shard_propagates_root_cause() {
        let plan = ShardPlan::striped(4, 4, 2).with_hop(Duration::from_millis(1));
        ShardedSimulation::new(PartEcho::new(4, 300), 7, plan).run_workers(
            |ctx: ActorCtx<PartEcho>| async move {
                let home = ctx.id().0 as u32 % 4;
                for i in 0..5u32 {
                    ctx.call(((home + i) % 4, i)).await;
                    if ctx.id().0 == 1 && i == 3 {
                        panic!("boom on shard 1");
                    }
                }
            },
        );
    }

    #[test]
    #[should_panic(expected = "deadlock: 1 live actors blocked")]
    fn sharded_deadlock_is_detected() {
        let plan = ShardPlan::striped(4, 4, 2).with_hop(Duration::from_millis(1));
        ShardedSimulation::new(PartEcho::new(4, 300), 7, plan).run_workers(
            |ctx: ActorCtx<PartEcho>| async move {
                if ctx.id().0 == 2 {
                    std::future::pending::<()>().await;
                }
                ctx.call((ctx.id().0 as u32 % 4, 1)).await;
            },
        );
    }

    #[test]
    #[should_panic(expected = "cross-partition call on a plan with no lookahead hop")]
    fn free_run_forbids_cross_partition_calls() {
        let plan = ShardPlan::striped(4, 4, 2);
        ShardedSimulation::new(PartEcho::new(4, 300), 7, plan).run_workers(
            |ctx: ActorCtx<PartEcho>| async move {
                let other = (ctx.id().0 as u32 + 1) % 4;
                ctx.call((other, 0)).await;
            },
        );
    }

    #[test]
    #[should_panic(expected = "lookahead hop must be positive")]
    fn zero_hop_is_rejected() {
        let _ = ShardPlan::striped(4, 4, 2).with_hop(Duration::ZERO);
    }

    #[test]
    fn rng_streams_are_identical_at_every_shard_count() {
        // Random draws are keyed by stable actor id, so the same seed gives
        // the same per-actor draws regardless of placement.
        let draws = |shards: u32| -> Vec<u64> {
            let plan = ShardPlan::striped(8, 8, shards);
            ShardedSimulation::new(PartEcho::new(8, 300), 99, plan)
                .run_workers(|ctx: ActorCtx<PartEcho>| async move {
                    ctx.call((ctx.id().0 as u32, 0)).await;
                    ctx.with_rng(|r| r.random::<u64>())
                })
                .results
        };
        let one = draws(1);
        assert_eq!(one, draws(2));
        assert_eq!(one, draws(4));
    }
}
