//! Sharded conservative parallel DES executor.
//!
//! The serial coroutine executor ([`crate::runtime::Simulation`]) hits a
//! scaling cliff once the actor population outgrows the cache: one heap, one
//! thread, every event through the same loop. This module shards the event
//! loop across OS threads while reproducing the serial observable history
//! **bit for bit** at every shard count.
//!
//! ## The plan: virtual partitions vs physical shards
//!
//! A [`ShardPlan`] has two independent halves:
//!
//! * **Virtual structure** — every actor has a *home partition*
//!   (`plan.home`), and a request may address a foreign partition
//!   ([`crate::runtime::Model::partition_of`]). A foreign-partition call
//!   pays a one-way network leg (`hop`) inbound and again on the reply —
//!   the modeled frontend round trip. This half determines **all observable
//!   timing**.
//! * **Physical placement** — partitions are assigned to shards
//!   (`plan.placement`); each actor runs on the shard owning its home
//!   partition. This half determines **only which thread fires an event**,
//!   never when.
//!
//!   The serial executor runs the identical virtual structure
//!   ([`Simulation::with_plan`]) with every partition local, so the sharded
//!   run at any shard count replays the same `(time, actor, seq)` event
//!   multiset — checked end-to-end by fingerprint
//!   ([`crate::runtime::SimReport::history_hash`]).
//!
//! Per-actor scheduler state is stored **dense per shard**: a shard hosting
//! a quarter of a striped fleet packs its actors contiguously
//! ([`crate::runtime::RouteTable::local_rank`]) instead of striding over
//! global-length arrays, and the global tables it does need (`home`,
//! `owner`, `local_rank`) are built once and `Arc`-shared rather than cloned
//! per shard.
//!
//! ## Conservative synchronization (null-message-free)
//!
//! With lookahead `hop`, shards synchronize in bounded windows — a
//! **single-barrier** round, no null messages, no rollback:
//!
//! 1. **Publish + flush**: each shard publishes its earliest future event —
//!    the minimum over its heap and its staged outbox — into its own slot of
//!    a parity-banked atomic array, then appends each outbox run in bulk to
//!    the per-`(src, dst)` staging lane (one lock per populated shard pair
//!    per window). *(barrier)*
//! 2. **Reduce + drain + process**: every shard reads all published slots,
//!    computing the same global minimum `G`; `G == ∞` means every heap,
//!    outbox and lane is empty and the run is over. Otherwise the shard
//!    bulk-drains its incoming lanes into the heap
//!    ([`crate::heap::EventHeap::push_batch`]) and fires its local events
//!    with `time < G + m·hop`, where `m ≤ 1` is the window multiple chosen
//!    by the [`WindowTuning`] controller. Cross-shard sends stage into the
//!    outbox for the next window's flush.
//!
//! **Why no message can arrive below the horizon:** a cross-shard message is
//! only created while processing an event at time `τ ≥ G`, and both
//! directions of a cross-partition call add `hop`, so its timestamp is
//! `≥ G + hop ≥ G + m·hop` — at or beyond everyone's horizon, for any
//! multiple `m ≤ 1`. Within the window each shard's events are causally
//! closed: they interact only through same-shard state, which the local heap
//! already fires in exact `(time, actor, seq)` order. The union of per-shard
//! schedules therefore equals the serial schedule (full argument in
//! `DESIGN.md` §18).
//!
//! **Why one barrier suffices:**
//!
//! * *Every in-flight message is always accounted for.* A shard publishes
//!   its minimum **including** the staged outbox before flushing it, so at
//!   the barrier each message is counted either by its sender's published
//!   slot or, once drained, by its receiver's heap. `G` can never skip past
//!   an undelivered message.
//! * *Same-window delivery.* The barrier sits between flush and drain, so a
//!   message flushed in window `w` is in its lane before the receiver
//!   drains in window `w` — and its timestamp `≥ G + hop` keeps it beyond
//!   window `w`'s horizon anyway.
//! * *Racing flushes are harmless.* A fast shard may flush window `w+1`
//!   into a lane its receiver is still draining for window `w`; the append
//!   happens under the lane mutex, and an early-drained message (timestamp
//!   beyond the horizon) just waits in the receiver's heap, where the
//!   receiver's own next publish counts it.
//! * *Published minima cannot be overwritten early.* Slots are banked by
//!   window parity: window `w+2`'s publish (the next reuse of bank `w % 2`)
//!   happens after barrier `w+1`, which every shard reaches only after
//!   reading bank `w % 2` for window `w`.
//!
//! The loop terminates when the reduced minimum is `u64::MAX`: every heap
//! and outbox was empty at publish time, and every earlier flush was
//! already drained in its own window, so no event exists anywhere.
//!
//! With no lookahead (`hop == None`) cross-partition calls are forbidden
//! and shards **free-run** to completion with zero synchronization — the
//! embarrassingly-parallel shape of the engine-ladder benchmark, where each
//! actor owns its partition.
//!
//! A panicking shard poisons the window barrier so the remaining shards
//! unwind instead of waiting forever; the earliest-window genuine panic is
//! recorded at the barrier and re-raised as the root cause.

use crate::heap::EventKey;
use crate::runtime::{
    fire_event, fnv1a_keys, rng_arena, ActorCtx, ActorId, ActorStore, ArenaStore, ExecState, Model,
    Payload, RouteTable, SimReport, Simulation, WindowStats,
};
use crate::time::SimTime;
use std::cell::{Cell, RefCell};
use std::future::Future;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

/// Shared routing tables, one entry per actor (or partition for the
/// middle table): home partition, partition → owning shard, and each
/// actor's dense local index on its owning shard.
type RouteTables = (Arc<Vec<u32>>, Arc<Vec<u32>>, Arc<Vec<u32>>);

/// A model whose state splits cleanly along partition boundaries.
///
/// Contract: for any request `r` with `partition_of(&r) == Some(p)`, the
/// sub-model for `p` produced by `split` must `handle` `r` exactly as the
/// whole model would — same completion time, same response, same state
/// mutation. That holds precisely when no state is shared across partitions,
/// which is what makes parallel execution exact rather than approximate.
pub trait ShardableModel: Model + Sized {
    /// Consume the model, producing one sub-model per partition (indexed by
    /// partition id).
    fn split(self, partitions: u32) -> Vec<Self>;

    /// Reassemble the whole model from sub-models in partition order, for
    /// end-of-run reporting (metrics merges, audits).
    fn merge(parts: Vec<Self>) -> Self;
}

/// How the windowed executor chooses the per-window lookahead multiple
/// `m ∈ [1/64, 1]` (each window processes events in `[G, G + m·hop)`).
///
/// The multiple trades barrier frequency against per-window lead, and is
/// **never observable**: every in-flight message carries the full `hop` of
/// lookahead regardless of how much of it a window consumes, so any
/// schedule of multiples — fixed, measured, or scripted — replays the
/// identical serial history (pinned by the window-schedule proptest).
#[derive(Clone, Debug, Default)]
pub enum WindowTuning {
    /// Process the full `hop` every window.
    #[default]
    Fixed,
    /// Closed-loop control on the measured barrier-wait fraction of wall
    /// time. A high wait fraction means this shard is outrunning a
    /// straggler — narrowing the multiple bounds its speculative lead so
    /// the shards' virtual clocks stay close and re-balance sooner. A low
    /// fraction means work dominates, so the multiple widens back toward
    /// the full hop to amortize barrier crossings.
    Adaptive {
        /// Barrier-wait fraction to regulate toward: above it the multiple
        /// halves, below half of it the multiple doubles, in between it
        /// holds.
        target: f64,
    },
    /// Cycle through a fixed schedule of multiples (clamped to `[1/64, 1]`);
    /// used by the determinism suite to prove schedule-independence.
    Scripted(Vec<f64>),
}

/// Smallest lookahead multiple the controller will narrow to.
pub(crate) const MIN_WINDOW_MULTIPLE: f64 = 1.0 / 64.0;

/// Per-shard window-multiple controller (see [`WindowTuning`]).
struct WindowAdapter<'a> {
    tuning: &'a WindowTuning,
    multiple: f64,
    script_pos: usize,
    windows: u64,
    sum_multiple: f64,
}

impl<'a> WindowAdapter<'a> {
    fn new(tuning: &'a WindowTuning) -> Self {
        WindowAdapter {
            tuning,
            multiple: 1.0,
            script_pos: 0,
            windows: 0,
            sum_multiple: 0.0,
        }
    }

    /// The lookahead (nanos) for the coming window: `m·hop`, at least 1 ns
    /// so the window always clears the events at exactly `G`, and never
    /// more than `hop`, beyond which the conservative bound is unsound.
    fn lookahead(&mut self, hop_ns: u64) -> u64 {
        if let WindowTuning::Scripted(seq) = self.tuning {
            if !seq.is_empty() {
                self.multiple = seq[self.script_pos % seq.len()].clamp(MIN_WINDOW_MULTIPLE, 1.0);
                self.script_pos += 1;
            }
        }
        self.windows += 1;
        self.sum_multiple += self.multiple;
        ((hop_ns as f64 * self.multiple) as u64).clamp(1, hop_ns.max(1))
    }

    /// Feed back one window's measured barrier wait and drain+process time.
    fn observe(&mut self, wait: Duration, work: Duration) {
        let WindowTuning::Adaptive { target } = *self.tuning else {
            return;
        };
        let total = wait.as_secs_f64() + work.as_secs_f64();
        if total <= 0.0 {
            return;
        }
        let frac = wait.as_secs_f64() / total;
        if frac > target {
            self.multiple = (self.multiple * 0.5).max(MIN_WINDOW_MULTIPLE);
        } else if frac < target * 0.5 {
            self.multiple = (self.multiple * 2.0).min(1.0);
        }
    }

    fn stats(&self) -> WindowStats {
        WindowStats {
            windows: self.windows,
            mean_multiple: if self.windows == 0 {
                0.0
            } else {
                self.sum_multiple / self.windows as f64
            },
        }
    }
}

/// The virtual-partition structure and physical placement of one run.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Number of virtual partitions.
    pub partitions: u32,
    /// Each actor's home partition (length = actor count).
    pub home: Vec<u32>,
    /// Number of physical shards (OS threads).
    pub shards: u32,
    /// Owning shard of each partition (length = `partitions`).
    pub placement: Vec<u32>,
    /// One-way cross-partition network leg; doubles as the conservative
    /// lookahead. `None` forbids cross-partition calls (free-run mode).
    pub hop: Option<Duration>,
    /// Lookahead-multiple policy for windowed runs (never observable).
    pub tuning: WindowTuning,
}

impl ShardPlan {
    /// Everything on one partition and one shard — the plan for fully
    /// coupled models (every storage-account resource shared), where the
    /// differential suite still proves the executor stack end-to-end.
    pub fn colocated(actors: usize) -> Self {
        ShardPlan {
            partitions: 1,
            home: vec![0; actors],
            shards: 1,
            placement: vec![0],
            hop: None,
            tuning: WindowTuning::Fixed,
        }
    }

    /// `partitions` partitions dealt round-robin over `shards` shards, with
    /// actor `a` homed on partition `a % partitions` — the plan for
    /// partition-independent models (one partition per actor stripes the
    /// engine ladder across every core).
    pub fn striped(actors: usize, partitions: u32, shards: u32) -> Self {
        assert!(partitions >= 1, "need at least one partition");
        let home = (0..actors)
            .map(|a| (a % partitions as usize) as u32)
            .collect();
        ShardPlan {
            partitions,
            home,
            shards: 1,
            placement: Vec::new(),
            hop: None,
            tuning: WindowTuning::Fixed,
        }
        .with_shards(shards)
    }

    /// Re-place partitions round-robin over `shards` shards.
    pub fn with_shards(mut self, shards: u32) -> Self {
        assert!(shards >= 1, "need at least one shard");
        self.shards = shards;
        self.placement = (0..self.partitions).map(|p| p % shards).collect();
        self
    }

    /// Set the cross-partition network leg / lookahead window. Must be
    /// positive: the window protocol only makes progress because the horizon
    /// `G + m·hop` lies strictly beyond the global minimum `G`.
    pub fn with_hop(mut self, hop: Duration) -> Self {
        assert!(hop > Duration::ZERO, "lookahead hop must be positive");
        self.hop = Some(hop);
        self
    }

    /// Choose the lookahead-multiple policy for windowed runs.
    pub fn with_window_tuning(mut self, tuning: WindowTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Number of actors this plan schedules.
    pub fn actors(&self) -> usize {
        self.home.len()
    }

    fn validate(&self) {
        assert!(self.partitions >= 1, "need at least one partition");
        assert!(self.shards >= 1, "need at least one shard");
        assert_eq!(
            self.placement.len(),
            self.partitions as usize,
            "placement must cover every partition"
        );
        for (p, &s) in self.placement.iter().enumerate() {
            assert!(s < self.shards, "partition {p} placed on missing shard {s}");
        }
        for (a, &p) in self.home.iter().enumerate() {
            assert!(
                p < self.partitions,
                "actor {a} homed on missing partition {p}"
            );
        }
    }

    /// The `Arc`-shared global routing tables, built once per run: each
    /// actor's home partition, each partition's owning shard, and each
    /// actor's dense local index on its owning shard (its rank among that
    /// shard's actors in ascending global-id order).
    fn shared_tables(&self) -> RouteTables {
        let mut next_rank = vec![0u32; self.shards as usize];
        let mut ranks = vec![0u32; self.home.len()];
        for (a, &h) in self.home.iter().enumerate() {
            let s = self.placement[h as usize] as usize;
            ranks[a] = next_rank[s];
            next_rank[s] += 1;
        }
        (
            Arc::new(self.home.clone()),
            Arc::new(self.placement.clone()),
            Arc::new(ranks),
        )
    }

    /// Routing table for one shard: locally owned partitions get dense slot
    /// indices in ascending partition order (matching the sub-model order
    /// built by [`ShardedSimulation::run_workers`]).
    fn route_for_shard<M: Model>(
        &self,
        shard: u32,
        home: &Arc<Vec<u32>>,
        owner: &Arc<Vec<u32>>,
        local_rank: &Arc<Vec<u32>>,
    ) -> RouteTable<M> {
        let mut slot = vec![None; self.partitions as usize];
        let mut next = 0u32;
        for (p, &s) in self.placement.iter().enumerate() {
            if s == shard {
                slot[p] = Some(next);
                next += 1;
            }
        }
        RouteTable {
            home: Arc::clone(home),
            local_rank: Arc::clone(local_rank),
            slot,
            owner: Arc::clone(owner),
            self_shard: shard,
            hop: self.hop,
            outbox: (0..self.shards).map(|_| Vec::new()).collect(),
        }
    }

    /// Routing table for the serial reference executor: the identical
    /// virtual structure (homes + hop), with every partition mapped to the
    /// single unsplit model and local index = global id.
    fn serial_route<M: Model>(&self) -> RouteTable<M> {
        RouteTable {
            home: Arc::new(self.home.clone()),
            local_rank: Arc::new((0..self.home.len() as u32).collect()),
            slot: vec![Some(0); self.partitions as usize],
            owner: Arc::new(vec![0; self.partitions as usize]),
            self_shard: 0,
            hop: self.hop,
            outbox: Vec::new(),
        }
    }
}

impl<M: Model> Simulation<M> {
    /// Run the serial executor under `plan`'s **virtual** structure (home
    /// partitions and hop legs), ignoring its physical placement. This is
    /// the pinned reference schedule that every sharded run of the same
    /// plan must reproduce bit-for-bit.
    pub fn with_plan(self, plan: &ShardPlan) -> Self {
        plan.validate();
        self.with_route(plan.serial_route())
    }
}

/// Panic payload used to cascade a teardown to shards parked at the window
/// barrier. Kept as a `&'static str` literal so the root cause can be told
/// apart from the cascade when propagating panics to the caller.
const SHARD_DEAD: &str = "simulation terminated: another shard failed";

fn is_cascade(p: &(dyn std::any::Any + Send)) -> bool {
    p.downcast_ref::<&'static str>() == Some(&SHARD_DEAD)
}

/// A reusable barrier that can be poisoned: a panicking shard marks it so
/// every parked (or later-arriving) shard wakes with `Err` and unwinds
/// instead of waiting forever on a participant that will never arrive.
///
/// The barrier also records the **root cause** of a poisoned run: the
/// lexicographically least `(window, shard)` whose guard observed a genuine
/// (non-cascade) panic. Thread join order is unrelated to causal order — a
/// shard ahead of the culprit can observe the poison and finish unwinding
/// first — so the caller asks the barrier, not the join sequence, whose
/// payload to re-raise.
struct PoisonBarrier {
    state: Mutex<BarrierInner>,
    cvar: Condvar,
    n: usize,
    root: Mutex<Option<(u64, u32)>>,
}

struct BarrierInner {
    count: usize,
    generation: u64,
    poisoned: bool,
}

struct Poisoned;

impl PoisonBarrier {
    fn new(n: usize) -> Self {
        PoisonBarrier {
            state: Mutex::new(BarrierInner {
                count: 0,
                generation: 0,
                poisoned: false,
            }),
            cvar: Condvar::new(),
            n,
            root: Mutex::new(None),
        }
    }

    fn wait(&self) -> Result<(), Poisoned> {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if st.poisoned {
            return Err(Poisoned);
        }
        st.count += 1;
        if st.count == self.n {
            st.count = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cvar.notify_all();
            return Ok(());
        }
        let gen = st.generation;
        while st.generation == gen && !st.poisoned {
            st = self.cvar.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        // Generation advancement wins over poison: if the round completed,
        // every waiter proceeds with its window (a fast sibling may have
        // panicked right after release — its poison is caught at the next
        // barrier). Otherwise the round can never complete: unwind now.
        if st.generation == gen {
            Err(Poisoned)
        } else {
            Ok(())
        }
    }

    fn poison(&self) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.poisoned = true;
        self.cvar.notify_all();
    }

    /// Record a genuine panic at `(window, shard)`, keeping the earliest.
    fn record_root(&self, window: u64, shard: u32) {
        let mut r = self.root.lock().unwrap_or_else(|p| p.into_inner());
        if r.is_none_or(|cur| (window, shard) < cur) {
            *r = Some((window, shard));
        }
    }

    /// The shard whose panic is the run's root cause, if one was recorded.
    fn root_shard(&self) -> Option<u32> {
        self.root
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .map(|(_, shard)| shard)
    }
}

/// Poisons the barrier if the owning shard unwinds, so sibling shards never
/// deadlock on a dead participant, and records the panic's `(window, shard)`
/// as a root-cause candidate — unless disarmed first, which cascade unwinds
/// do so they are never mistaken for the culprit.
struct PoisonGuard<'a> {
    barrier: &'a PoisonBarrier,
    shard: u32,
    window: Cell<u64>,
    armed: Cell<bool>,
}

impl<'a> PoisonGuard<'a> {
    fn new(barrier: &'a PoisonBarrier, shard: u32) -> Self {
        PoisonGuard {
            barrier,
            shard,
            window: Cell::new(0),
            armed: Cell::new(true),
        }
    }

    fn disarm(&self) {
        self.armed.set(false);
    }
}

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            if self.armed.get() {
                self.barrier.record_root(self.window.get(), self.shard);
            }
            self.barrier.poison();
        }
    }
}

/// Events staged for delivery to one shard.
type Staged<M> = Vec<(EventKey, Payload<M>)>;

/// Cross-shard rendezvous state for windowed runs.
struct SyncShared<M: Model> {
    barrier: PoisonBarrier,
    shards: usize,
    /// Published per-shard minima, banked by window parity (`2 × shards`
    /// slots): bank `w % 2` serves window `w`, and its next reuse (window
    /// `w + 2`) cannot begin until barrier `w + 1` proves every shard has
    /// finished reading it.
    mins: Vec<AtomicU64>,
    /// Per-`(src, dst)` staging lanes (`shards × shards`, row-major by
    /// source). Bulk-appended by the sender's flush, bulk-drained by the
    /// receiver — one lock per populated shard pair per window, and the
    /// lane buffers keep their capacity across windows.
    lanes: Vec<Mutex<Staged<M>>>,
}

/// Everything one shard needs to run, built on the coordinating thread and
/// moved onto the shard thread.
struct ShardInput<M: Model> {
    me: u32,
    /// Sub-models of locally owned partitions, in ascending partition order.
    models: Vec<M>,
    /// The partition ids matching `models`.
    local_parts: Vec<u32>,
    /// Global ids of locally homed actors, ascending.
    actors: Vec<usize>,
    route: RouteTable<M>,
}

/// What one shard hands back for merging.
struct ShardOutcome<M, R> {
    models: Vec<M>,
    local_parts: Vec<u32>,
    /// `(global id, result)` per local actor; `None` only when the run is
    /// about to fail the deadlock assertion.
    results: Vec<(usize, Option<R>)>,
    end_time: SimTime,
    requests: u64,
    events: u64,
    history: Option<Vec<EventKey>>,
    blocked: usize,
    window: WindowStats,
}

/// A virtual-time simulation executed across shard threads under a
/// [`ShardPlan`]. Same seed and plan semantics ⇒ identical observables to
/// the serial executor, at every shard count.
pub struct ShardedSimulation<M: ShardableModel> {
    model: M,
    seed: u64,
    plan: ShardPlan,
    record: bool,
}

impl<M: ShardableModel> ShardedSimulation<M> {
    /// Create a sharded simulation over `model` with deterministic `seed`.
    pub fn new(model: M, seed: u64, plan: ShardPlan) -> Self {
        plan.validate();
        ShardedSimulation {
            model,
            seed,
            plan,
            record: false,
        }
    }

    /// Record the `(time, actor, seq)` observable history and report its
    /// merged fingerprint in [`SimReport::history_hash`].
    pub fn record_history(mut self) -> Self {
        self.record = true;
        self
    }

    /// Run one identical worker per plan actor (`plan.actors()` of them).
    ///
    /// `body` must be callable from any shard thread (`Sync`); the futures
    /// it creates live and are polled entirely on one shard thread, so they
    /// need not be `Send`.
    pub fn run_workers<R, F, Fut>(self, body: F) -> SimReport<M, R>
    where
        R: Send,
        F: Fn(ActorCtx<M>) -> Fut + Sync,
        Fut: Future<Output = R>,
    {
        let ShardedSimulation {
            model,
            seed,
            plan,
            record,
        } = self;
        let n = plan.actors();
        let shards = plan.shards as usize;
        let parts_total = plan.partitions as usize;
        let (home, owner, local_rank) = plan.shared_tables();

        // Split the model and bucket sub-models + actors by owning shard.
        let mut parts: Vec<Option<M>> =
            model.split(plan.partitions).into_iter().map(Some).collect();
        assert_eq!(
            parts.len(),
            parts_total,
            "split() returned a wrong partition count"
        );
        let mut inputs: Vec<ShardInput<M>> = (0..shards)
            .map(|s| ShardInput {
                me: s as u32,
                models: Vec::new(),
                local_parts: Vec::new(),
                actors: Vec::new(),
                route: plan.route_for_shard(s as u32, &home, &owner, &local_rank),
            })
            .collect();
        for (p, part) in parts.iter_mut().enumerate() {
            let s = plan.placement[p] as usize;
            inputs[s]
                .models
                .push(part.take().expect("partition placed twice"));
            inputs[s].local_parts.push(p as u32);
        }
        for (a, &home_part) in plan.home.iter().enumerate() {
            inputs[plan.placement[home_part as usize] as usize]
                .actors
                .push(a);
        }

        let outcomes: Vec<ShardOutcome<M, R>> = if shards == 1 {
            // Inline: one populated shard is exactly the serial schedule —
            // no threads, no barriers.
            vec![run_shard(
                inputs.pop().expect("one shard input"),
                seed,
                record,
                &body,
                None,
                plan.hop,
                &plan.tuning,
            )]
        } else if plan.hop.is_none() {
            // Free-run: no cross-partition traffic is possible, so shards
            // are fully independent.
            run_on_threads(inputs, seed, record, &body, None, None, &plan.tuning)
        } else {
            let sync = SyncShared {
                barrier: PoisonBarrier::new(shards),
                shards,
                mins: (0..2 * shards).map(|_| AtomicU64::new(u64::MAX)).collect(),
                lanes: (0..shards * shards)
                    .map(|_| Mutex::new(Vec::new()))
                    .collect(),
            };
            run_on_threads(
                inputs,
                seed,
                record,
                &body,
                Some(&sync),
                plan.hop,
                &plan.tuning,
            )
        };

        merge_outcomes(outcomes, n, parts_total, record)
    }
}

/// Spawn one scoped thread per shard, join them all, and re-raise the
/// root-cause panic: the earliest `(window, shard)` genuine panic recorded
/// at the barrier, falling back to the first non-cascade payload in shard
/// order for unsynchronized runs.
fn run_on_threads<M, R, F, Fut>(
    inputs: Vec<ShardInput<M>>,
    seed: u64,
    record: bool,
    body: &F,
    sync: Option<&SyncShared<M>>,
    hop: Option<Duration>,
    tuning: &WindowTuning,
) -> Vec<ShardOutcome<M, R>>
where
    M: Model,
    R: Send,
    F: Fn(ActorCtx<M>) -> Fut + Sync,
    Fut: Future<Output = R>,
{
    type Joined<M, R> = (
        u32,
        Result<ShardOutcome<M, R>, Box<dyn std::any::Any + Send>>,
    );
    let joined: Vec<Joined<M, R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .into_iter()
            .map(|input| {
                let me = input.me;
                (
                    me,
                    scope.spawn(move || run_shard(input, seed, record, body, sync, hop, tuning)),
                )
            })
            .collect();
        handles.into_iter().map(|(me, h)| (me, h.join())).collect()
    });
    let mut outcomes = Vec::with_capacity(joined.len());
    let mut panics: Vec<(u32, Box<dyn std::any::Any + Send>)> = Vec::new();
    for (shard, j) in joined {
        match j {
            Ok(o) => outcomes.push(o),
            Err(p) => panics.push((shard, p)),
        }
    }
    if !panics.is_empty() {
        let root_shard = sync.and_then(|s| s.barrier.root_shard());
        let idx = root_shard
            .and_then(|rs| {
                panics
                    .iter()
                    .position(|(s, p)| *s == rs && !is_cascade(p.as_ref()))
            })
            .or_else(|| panics.iter().position(|(_, p)| !is_cascade(p.as_ref())))
            .unwrap_or(0);
        std::panic::resume_unwind(panics.swap_remove(idx).1);
    }
    outcomes
}

/// Run one shard to completion: launch its actors, then drain events —
/// unbounded when unsynchronized, in conservative windows otherwise.
fn run_shard<M, R, F, Fut>(
    input: ShardInput<M>,
    seed: u64,
    record: bool,
    body: &F,
    sync: Option<&SyncShared<M>>,
    hop: Option<Duration>,
    tuning: &WindowTuning,
) -> ShardOutcome<M, R>
where
    M: Model,
    F: Fn(ActorCtx<M>) -> Fut,
    Fut: Future<Output = R>,
{
    let ShardInput {
        me,
        models,
        local_parts,
        actors,
        route,
    } = input;
    let n_local = actors.len();
    // Held outside the RefCell so the event loops can map a popped key's
    // global actor id to its dense local index without borrowing state.
    let local_rank = Arc::clone(&route.local_rank);
    let state = Rc::new(RefCell::new(ExecState::new(
        n_local,
        models,
        Some(route),
        record,
    )));
    let rngs = rng_arena(seed, actors.iter().copied());
    let mut store = ArenaStore::with_capacity(n_local);
    for (li, &a) in actors.iter().enumerate() {
        let slot = {
            let st = state.borrow();
            let rt = st.route.as_ref().expect("shard state always has a route");
            rt.slot[rt.home[a] as usize]
                .expect("actor homed on a partition this shard does not own")
        };
        store.push(body(ActorCtx::make(
            ActorId(a),
            slot,
            li as u32,
            Rc::clone(&rngs),
            Rc::clone(&state),
        )));
    }

    let mut results: Vec<Option<R>> = (0..n_local).map(|_| None).collect();
    let mut cx = Context::from_waker(Waker::noop());
    // Launch phase: first poll in ascending global-id order. Cross-shard
    // first calls land in the outbox and flush in the first window.
    for (li, result) in results.iter_mut().enumerate() {
        if let Poll::Ready(r) = store.poll(li, &mut cx) {
            *result = Some(r);
        }
    }

    let window_stats = match sync {
        None => {
            loop {
                let popped = state.borrow_mut().pop_due(None);
                let Some((k, payload)) = popped else { break };
                fire_event(
                    &state,
                    k,
                    payload,
                    &mut store,
                    &mut results,
                    local_rank[k.actor.0] as usize,
                    &mut cx,
                );
            }
            WindowStats::default()
        }
        Some(sync) => {
            let hop = hop.expect("windowed sync requires a lookahead hop");
            let hop_ns = hop.as_nanos() as u64;
            let me_us = me as usize;
            let guard = PoisonGuard::new(&sync.barrier, me);
            let mut adapter = WindowAdapter::new(tuning);
            let mut window: u64 = 0;
            loop {
                guard.window.set(window);
                let bank = (window & 1) as usize * sync.shards;
                // Publish our earliest future event — heap or staged
                // outbox — then flush the outbox in bulk, one lane lock
                // per populated destination.
                {
                    let mut st = state.borrow_mut();
                    let mut local_min = st.heap.peek_time().map_or(u64::MAX, |t| t.as_nanos());
                    let rt = st.route.as_mut().expect("shard state always has a route");
                    for msgs in &rt.outbox {
                        for (k, _) in msgs.iter() {
                            local_min = local_min.min(k.time.as_nanos());
                        }
                    }
                    sync.mins[bank + me_us].store(local_min, Ordering::Release);
                    for (dest, msgs) in rt.outbox.iter_mut().enumerate() {
                        if !msgs.is_empty() {
                            sync.lanes[me_us * sync.shards + dest]
                                .lock()
                                .unwrap_or_else(|p| p.into_inner())
                                .append(msgs);
                        }
                    }
                }
                let wait_start = Instant::now();
                if sync.barrier.wait().is_err() {
                    guard.disarm();
                    std::panic::panic_any(SHARD_DEAD);
                }
                let wait = wait_start.elapsed();
                // Reduce: every shard reads the same parity bank, so all
                // agree on G. (The barrier's lock handoff orders the
                // Release stores above before these Acquire loads.)
                let mut g = u64::MAX;
                for slot in &sync.mins[bank..bank + sync.shards] {
                    g = g.min(slot.load(Ordering::Acquire));
                }
                if g == u64::MAX {
                    // No event in any heap or outbox, and every earlier
                    // flush was drained in its own window: done.
                    #[cfg(debug_assertions)]
                    for src in 0..sync.shards {
                        debug_assert!(
                            sync.lanes[src * sync.shards + me_us]
                                .lock()
                                .unwrap_or_else(|p| p.into_inner())
                                .is_empty(),
                            "staging lane not empty at termination"
                        );
                    }
                    break;
                }
                let work_start = Instant::now();
                // Drain incoming lanes in bulk; buffers keep their
                // capacity, so the steady state allocates nothing.
                {
                    let mut st = state.borrow_mut();
                    for src in 0..sync.shards {
                        let mut lane = sync.lanes[src * sync.shards + me_us]
                            .lock()
                            .unwrap_or_else(|p| p.into_inner());
                        if !lane.is_empty() {
                            st.heap.push_batch(lane.drain(..));
                        }
                    }
                }
                // Process strictly below the (possibly narrowed) horizon.
                let horizon = SimTime(g.saturating_add(adapter.lookahead(hop_ns)));
                loop {
                    let popped = state.borrow_mut().pop_due(Some(horizon));
                    let Some((k, payload)) = popped else { break };
                    fire_event(
                        &state,
                        k,
                        payload,
                        &mut store,
                        &mut results,
                        local_rank[k.actor.0] as usize,
                        &mut cx,
                    );
                }
                adapter.observe(wait, work_start.elapsed());
                window += 1;
            }
            adapter.stats()
        }
    };

    let blocked = store.live_count();
    drop(store);
    let mut st = Rc::try_unwrap(state)
        .ok()
        .expect("actor contexts outlived the simulation")
        .into_inner();
    if let Some(rt) = &st.route {
        debug_assert!(
            rt.outbox.iter().all(|o| o.is_empty()),
            "shard finished with unsent cross-shard messages"
        );
    }
    ShardOutcome {
        models: std::mem::take(&mut st.models),
        local_parts,
        results: actors.into_iter().zip(results).collect(),
        end_time: st.end_time,
        requests: st.requests,
        events: st.events,
        history: st.history.take(),
        blocked,
        window: window_stats,
    }
}

/// Merge per-shard outcomes into one report: reassemble the model in
/// partition order, scatter results back to global actor ids, sum counters,
/// and fingerprint the merged observable history.
fn merge_outcomes<M: ShardableModel, R>(
    outcomes: Vec<ShardOutcome<M, R>>,
    n: usize,
    parts_total: usize,
    record: bool,
) -> SimReport<M, R> {
    let blocked: usize = outcomes.iter().map(|o| o.blocked).sum();
    assert!(
        blocked == 0,
        "deadlock: {blocked} live actors blocked with no pending events"
    );
    let mut parts: Vec<Option<M>> = (0..parts_total).map(|_| None).collect();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut end_time = SimTime::ZERO;
    let mut requests = 0u64;
    let mut events = 0u64;
    let mut shard_events = Vec::with_capacity(outcomes.len());
    let mut window_stats = Vec::with_capacity(outcomes.len());
    let mut history: Vec<EventKey> = Vec::new();
    for o in outcomes {
        shard_events.push(o.events);
        window_stats.push(o.window);
        events += o.events;
        requests += o.requests;
        end_time = end_time.max(o.end_time);
        for (&p, m) in o.local_parts.iter().zip(o.models) {
            parts[p as usize] = Some(m);
        }
        for (a, r) in o.results {
            results[a] = r;
        }
        if let Some(h) = o.history {
            history.extend(h);
        }
    }
    let model = M::merge(
        parts
            .into_iter()
            .map(|p| p.expect("partition lost during merge"))
            .collect(),
    );
    let history_hash = record.then(|| {
        history.sort_unstable();
        fnv1a_keys(&history)
    });
    SimReport {
        model,
        results: results
            .into_iter()
            .map(|r| r.expect("actor finished without producing a result"))
            .collect(),
        end_time,
        requests,
        events,
        shard_events,
        window_stats,
        history_hash,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::FifoServer;
    use crate::time::SimTime;
    use rand::Rng;

    /// A partition-separable model: one FIFO server per partition, requests
    /// address a target partition explicitly. Splitting hands each sub-model
    /// the real server of its own partition (the others stay fresh and, by
    /// the routing contract, untouched).
    struct PartEcho {
        partitions: u32,
        service: Duration,
        servers: Vec<FifoServer>,
        handled: Vec<u64>,
    }

    impl PartEcho {
        fn new(partitions: u32, service_us: u64) -> Self {
            PartEcho {
                partitions,
                service: Duration::from_micros(service_us),
                servers: (0..partitions).map(|_| FifoServer::new()).collect(),
                handled: vec![0; partitions as usize],
            }
        }
    }

    impl Model for PartEcho {
        type Req = (u32, u32);
        type Resp = (u32, SimTime);

        fn handle(
            &mut self,
            now: SimTime,
            _actor: ActorId,
            req: (u32, u32),
        ) -> (SimTime, Self::Resp) {
            let p = req.0 as usize;
            self.handled[p] += 1;
            let (_, end) = self.servers[p].admit(now, self.service);
            (end, (req.1, end))
        }

        fn partition_of(&self, req: &(u32, u32)) -> Option<u32> {
            Some(req.0)
        }
    }

    impl ShardableModel for PartEcho {
        fn split(mut self, partitions: u32) -> Vec<Self> {
            assert_eq!(partitions, self.partitions, "plan/model partition mismatch");
            (0..partitions as usize)
                .map(|p| {
                    let mut servers: Vec<FifoServer> =
                        (0..partitions).map(|_| FifoServer::new()).collect();
                    std::mem::swap(&mut servers[p], &mut self.servers[p]);
                    let mut handled = vec![0; partitions as usize];
                    handled[p] = self.handled[p];
                    PartEcho {
                        partitions,
                        service: self.service,
                        servers,
                        handled,
                    }
                })
                .collect()
        }

        fn merge(parts: Vec<Self>) -> Self {
            let partitions = parts.len() as u32;
            let service = parts[0].service;
            let mut servers = Vec::with_capacity(parts.len());
            let mut handled = Vec::with_capacity(parts.len());
            for (p, mut part) in parts.into_iter().enumerate() {
                servers.push(std::mem::take(&mut part.servers[p]));
                handled.push(part.handled[p]);
            }
            PartEcho {
                partitions,
                service,
                servers,
                handled,
            }
        }
    }

    type Obs = Vec<(u32, u64)>;

    /// The workload used by the differential tests: a deterministic mix of
    /// home and cross-partition calls, sleeps, and RNG draws, observed as
    /// `(value, completion_nanos)` pairs.
    fn mixed_body(
        partitions: u32,
        rounds: u32,
    ) -> impl Fn(ActorCtx<PartEcho>) -> std::pin::Pin<Box<dyn Future<Output = Obs>>> + Sync {
        move |ctx: ActorCtx<PartEcho>| {
            Box::pin(async move {
                let me = ctx.id().0 as u32;
                let home = me % partitions;
                let mut out = Vec::new();
                for i in 0..rounds {
                    // Cycle through every partition, starting at home.
                    let target = (home + i) % partitions;
                    let jitter: u64 = ctx.with_rng(|r| r.random_range(0..50));
                    ctx.sleep(Duration::from_micros(jitter)).await;
                    let (v, done) = ctx.call((target, me * 1000 + i)).await;
                    out.push((v, done.as_nanos()));
                }
                out
            })
        }
    }

    fn report_fingerprint(
        r: &SimReport<PartEcho, Obs>,
    ) -> (Vec<Obs>, u64, u64, Vec<u64>, Option<u64>) {
        (
            r.results.clone(),
            r.end_time.as_nanos(),
            r.requests,
            r.model.handled.clone(),
            r.history_hash,
        )
    }

    /// The pinned reference: serial executor under the plan's virtual
    /// structure.
    fn serial_reference(
        plan: &ShardPlan,
        actors: usize,
        partitions: u32,
        rounds: u32,
    ) -> SimReport<PartEcho, Obs> {
        Simulation::new(PartEcho::new(partitions, 300), 7)
            .with_plan(plan)
            .record_history()
            .run_workers(actors, mixed_body(partitions, rounds))
    }

    fn sharded(plan: ShardPlan, partitions: u32, rounds: u32) -> SimReport<PartEcho, Obs> {
        let actors = plan.actors();
        assert_eq!(actors, plan.home.len());
        ShardedSimulation::new(PartEcho::new(partitions, 300), 7, plan)
            .record_history()
            .run_workers(mixed_body(partitions, rounds))
    }

    #[test]
    fn single_shard_inline_matches_serial() {
        let plan = ShardPlan::striped(6, 3, 1).with_hop(Duration::from_millis(1));
        let serial = serial_reference(&plan, 6, 3, 8);
        let shd = sharded(plan, 3, 8);
        assert_eq!(report_fingerprint(&serial), report_fingerprint(&shd));
        assert_eq!(shd.shard_events, vec![shd.events]);
    }

    #[test]
    fn windowed_multi_shard_matches_serial_bit_for_bit() {
        let partitions = 4;
        let actors = 8;
        let rounds = 10;
        let base = ShardPlan::striped(actors, partitions, 1).with_hop(Duration::from_millis(1));
        let serial = serial_reference(&base, actors, partitions, rounds);
        for shards in [2u32, 4] {
            let shd = sharded(base.clone().with_shards(shards), partitions, rounds);
            assert_eq!(
                report_fingerprint(&serial),
                report_fingerprint(&shd),
                "observables diverged at {shards} shards"
            );
            assert_eq!(shd.shard_events.len(), shards as usize);
            assert_eq!(shd.shard_events.iter().sum::<u64>(), serial.events);
            assert!(shd.history_hash.is_some());
        }
    }

    #[test]
    fn window_tuning_never_changes_observables() {
        // Fixed, adaptive and scripted multiples must replay the identical
        // serial schedule — the multiple only decides how much of the
        // lookahead each window consumes, never event timing.
        let partitions = 4;
        let actors = 8;
        let rounds = 6;
        let base = ShardPlan::striped(actors, partitions, 1).with_hop(Duration::from_millis(1));
        let serial = serial_reference(&base, actors, partitions, rounds);
        for tuning in [
            WindowTuning::Fixed,
            WindowTuning::Adaptive { target: 0.25 },
            WindowTuning::Scripted(vec![1.0, 0.25, MIN_WINDOW_MULTIPLE, 0.5]),
        ] {
            let shd = sharded(
                base.clone()
                    .with_shards(2)
                    .with_window_tuning(tuning.clone()),
                partitions,
                rounds,
            );
            assert_eq!(
                report_fingerprint(&serial),
                report_fingerprint(&shd),
                "observables diverged under {tuning:?}"
            );
        }
    }

    #[test]
    fn windowed_run_reports_window_stats() {
        let plan = ShardPlan::striped(8, 4, 2).with_hop(Duration::from_millis(1));
        let shd = sharded(plan, 4, 6);
        assert_eq!(shd.window_stats.len(), 2);
        for w in &shd.window_stats {
            assert!(w.windows > 0, "windowed shard ran zero windows");
            assert!(
                (w.mean_multiple - 1.0).abs() < 1e-9,
                "fixed tuning must hold the full multiple"
            );
        }
        // The serial executor reports no window stats at all.
        let base = ShardPlan::striped(8, 4, 1).with_hop(Duration::from_millis(1));
        assert!(serial_reference(&base, 8, 4, 6).window_stats.is_empty());
    }

    #[test]
    fn adapter_narrows_under_barrier_heavy_load_and_recovers() {
        let tuning = WindowTuning::Adaptive { target: 0.25 };
        let mut ad = WindowAdapter::new(&tuning);
        let hop = 1_000_000u64;
        assert_eq!(ad.lookahead(hop), hop);
        // Barrier wait dominating the window → the multiple halves…
        ad.observe(Duration::from_millis(9), Duration::from_millis(1));
        assert_eq!(ad.lookahead(hop), hop / 2);
        // …and keeps halving down to the floor.
        for _ in 0..10 {
            ad.observe(Duration::from_millis(9), Duration::from_millis(1));
        }
        assert_eq!(ad.lookahead(hop), (hop as f64 * MIN_WINDOW_MULTIPLE) as u64);
        // Work-dominated windows widen back to the full hop.
        for _ in 0..10 {
            ad.observe(Duration::from_millis(1), Duration::from_millis(99));
        }
        assert_eq!(ad.lookahead(hop), hop);
        // Inside the deadband the multiple holds steady.
        ad.observe(Duration::from_millis(2), Duration::from_millis(8));
        assert_eq!(ad.lookahead(hop), hop);
        let stats = ad.stats();
        assert_eq!(stats.windows, 5);
        assert!(stats.mean_multiple > 0.0 && stats.mean_multiple <= 1.0);
    }

    #[test]
    fn adapter_lookahead_never_leaves_bounds() {
        let tuning = WindowTuning::Scripted(vec![0.0, 10.0, -3.0, 0.5]);
        let mut ad = WindowAdapter::new(&tuning);
        let hop = 1_000u64;
        for _ in 0..8 {
            let la = ad.lookahead(hop);
            assert!((1..=hop).contains(&la), "lookahead {la} out of bounds");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]
        /// Any schedule of window multiples — including degenerate and
        /// out-of-range ones — reproduces the serial observable history
        /// bit-for-bit at every shard count.
        #[test]
        fn prop_any_window_schedule_matches_serial(
            raw in proptest::collection::vec(0u32..160, 1..10),
            shards in 2u32..5,
        ) {
            let multiples: Vec<f64> = raw.iter().map(|&v| v as f64 / 64.0).collect();
            let partitions = 4;
            let actors = 8;
            let rounds = 5;
            let base =
                ShardPlan::striped(actors, partitions, 1).with_hop(Duration::from_millis(1));
            let serial = serial_reference(&base, actors, partitions, rounds);
            let shd = sharded(
                base.with_shards(shards)
                    .with_window_tuning(WindowTuning::Scripted(multiples)),
                partitions,
                rounds,
            );
            proptest::prop_assert_eq!(report_fingerprint(&serial), report_fingerprint(&shd));
        }
    }

    #[test]
    fn free_run_striped_matches_serial() {
        // One partition per actor and home-only calls: embarrassingly
        // parallel, no hop, no barriers.
        let actors = 8;
        let partitions = actors as u32;
        let base = ShardPlan::striped(actors, partitions, 1);
        let body = |ctx: ActorCtx<PartEcho>| async move {
            let home = ctx.id().0 as u32;
            let mut acc = 0u64;
            for i in 0..20u32 {
                let (v, done) = ctx.call((home, i)).await;
                acc = acc
                    .wrapping_mul(31)
                    .wrapping_add(v as u64 + done.as_nanos());
            }
            acc
        };
        let serial = Simulation::new(PartEcho::new(partitions, 300), 7)
            .with_plan(&base)
            .record_history()
            .run_workers(actors, body);
        let shd = ShardedSimulation::new(PartEcho::new(partitions, 300), 7, base.with_shards(4))
            .record_history()
            .run_workers(body);
        assert_eq!(serial.results, shd.results);
        assert_eq!(serial.end_time, shd.end_time);
        assert_eq!(serial.history_hash, shd.history_hash);
        assert_eq!(serial.model.handled, shd.model.handled);
        assert_eq!(shd.shard_events.len(), 4);
    }

    #[test]
    fn colocated_plan_with_idle_shards_matches_serial() {
        // One partition, many shards: shards 1..3 own nothing and idle
        // through the window protocol without perturbing the schedule.
        let actors = 5;
        let plan = ShardPlan {
            partitions: 1,
            home: vec![0; actors],
            shards: 1,
            placement: vec![0],
            hop: None,
            tuning: WindowTuning::Fixed,
        }
        .with_shards(4)
        .with_hop(Duration::from_millis(2));
        let serial = serial_reference(&plan, actors, 1, 6);
        let shd = sharded(plan, 1, 6);
        assert_eq!(report_fingerprint(&serial), report_fingerprint(&shd));
        // All events fired on shard 0.
        assert_eq!(shd.shard_events[1..], [0, 0, 0]);
    }

    #[test]
    fn colocated_constructor_is_serial() {
        let plan = ShardPlan::colocated(3);
        assert_eq!((plan.partitions, plan.shards), (1, 1));
        let serial = serial_reference(&plan, 3, 1, 4);
        let shd = sharded(plan, 1, 4);
        assert_eq!(report_fingerprint(&serial), report_fingerprint(&shd));
    }

    #[test]
    #[should_panic(expected = "boom on shard 1")]
    fn panic_in_one_shard_propagates_root_cause() {
        let plan = ShardPlan::striped(4, 4, 2).with_hop(Duration::from_millis(1));
        ShardedSimulation::new(PartEcho::new(4, 300), 7, plan).run_workers(
            |ctx: ActorCtx<PartEcho>| async move {
                let home = ctx.id().0 as u32 % 4;
                for i in 0..5u32 {
                    ctx.call(((home + i) % 4, i)).await;
                    if ctx.id().0 == 1 && i == 3 {
                        panic!("boom on shard 1");
                    }
                }
            },
        );
    }

    #[test]
    #[should_panic(expected = "boom from shard 0")]
    fn double_panic_selects_lowest_window_then_lowest_shard() {
        // Both shards panic genuinely in the same window: their timers fire
        // at the same virtual time, and the barrier releases both threads
        // into the processing phase together. The barrier must pick the
        // lexicographically least (window, shard) root — shard 0 —
        // regardless of which thread unwinds or joins first.
        let plan = ShardPlan::striped(2, 2, 2).with_hop(Duration::from_millis(1));
        ShardedSimulation::new(PartEcho::new(2, 300), 7, plan).run_workers(
            |ctx: ActorCtx<PartEcho>| async move {
                ctx.sleep(Duration::from_micros(10)).await;
                panic!("boom from shard {}", ctx.id().0 % 2);
            },
        );
    }

    #[test]
    #[should_panic(expected = "deadlock: 1 live actors blocked")]
    fn sharded_deadlock_is_detected() {
        let plan = ShardPlan::striped(4, 4, 2).with_hop(Duration::from_millis(1));
        ShardedSimulation::new(PartEcho::new(4, 300), 7, plan).run_workers(
            |ctx: ActorCtx<PartEcho>| async move {
                if ctx.id().0 == 2 {
                    std::future::pending::<()>().await;
                }
                ctx.call((ctx.id().0 as u32 % 4, 1)).await;
            },
        );
    }

    #[test]
    #[should_panic(expected = "cross-partition call on a plan with no lookahead hop")]
    fn free_run_forbids_cross_partition_calls() {
        let plan = ShardPlan::striped(4, 4, 2);
        ShardedSimulation::new(PartEcho::new(4, 300), 7, plan).run_workers(
            |ctx: ActorCtx<PartEcho>| async move {
                let other = (ctx.id().0 as u32 + 1) % 4;
                ctx.call((other, 0)).await;
            },
        );
    }

    #[test]
    #[should_panic(expected = "lookahead hop must be positive")]
    fn zero_hop_is_rejected() {
        let _ = ShardPlan::striped(4, 4, 2).with_hop(Duration::ZERO);
    }

    #[test]
    fn rng_streams_are_identical_at_every_shard_count() {
        // Random draws are keyed by stable actor id, so the same seed gives
        // the same per-actor draws regardless of placement.
        let draws = |shards: u32| -> Vec<u64> {
            let plan = ShardPlan::striped(8, 8, shards);
            ShardedSimulation::new(PartEcho::new(8, 300), 99, plan)
                .run_workers(|ctx: ActorCtx<PartEcho>| async move {
                    ctx.call((ctx.id().0 as u32, 0)).await;
                    ctx.with_rng(|r| r.random::<u64>())
                })
                .results
        };
        let one = draws(1);
        assert_eq!(one, draws(2));
        assert_eq!(one, draws(4));
    }
}
