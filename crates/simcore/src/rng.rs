//! Deterministic random-number plumbing.
//!
//! Every simulated actor (and the cluster model itself) gets an independent
//! random stream derived from a single master seed, so a whole experiment is
//! reproducible from one `u64` while actors remain statistically
//! uncorrelated.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derive a child seed from a master seed and a stream identifier using the
/// SplitMix64 finalizer (a strong 64-bit mixer, good enough to decorrelate
/// sequential stream ids).
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic RNG for the given `(master, stream)` pair.
pub fn stream_rng(master: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master, stream))
}

/// The random stream of one simulated actor, keyed by its **stable actor
/// id** — never by spawn order.
///
/// Every executor (serial coroutine, thread-backed reference, sharded) must
/// derive actor streams through this function. On the single-threaded
/// executors spawn order and actor id coincide, but the sharded executor
/// launches each shard's actors in shard-local order; seeding by launch
/// order there would make random draws depend on the partition plan. Keying
/// by `ActorId` makes the stream a pure function of `(master seed, actor)`,
/// so the same program produces identical draws at every shard count.
pub fn actor_rng(master: u64, actor: crate::runtime::ActorId) -> SmallRng {
    stream_rng(master, actor.0 as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
    }

    #[test]
    fn derive_seed_separates_streams() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn stream_rngs_are_reproducible_and_distinct() {
        let mut r1 = stream_rng(99, 3);
        let mut r2 = stream_rng(99, 3);
        let mut r3 = stream_rng(99, 4);
        let s1: Vec<u64> = (0..16).map(|_| r1.random()).collect();
        let s2: Vec<u64> = (0..16).map(|_| r2.random()).collect();
        let s3: Vec<u64> = (0..16).map(|_| r3.random()).collect();
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn actor_rng_is_keyed_by_stable_id_not_spawn_order() {
        use crate::runtime::ActorId;
        // Drawing streams for actors 0..8 in any order gives the same
        // per-actor sequences: the stream depends only on (master, id).
        let draw = |id: usize| stream_rng(11, id as u64).random::<u64>();
        let mut shuffled: Vec<usize> = vec![5, 2, 7, 0, 3, 6, 1, 4];
        let by_shuffled: Vec<(usize, u64)> = shuffled
            .iter()
            .map(|&id| (id, actor_rng(11, ActorId(id)).random::<u64>()))
            .collect();
        for (id, v) in by_shuffled {
            assert_eq!(v, draw(id), "actor {id} stream depends on draw order");
        }
        shuffled.sort_unstable();
    }

    #[test]
    fn sequential_streams_look_uncorrelated() {
        // Crude sanity check: first draws from 64 consecutive streams should
        // be well spread over the u64 range (no clustering).
        let firsts: Vec<u64> = (0..64).map(|s| stream_rng(7, s).random::<u64>()).collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "collisions in first draws");
        // At least one draw in each half of the range.
        assert!(firsts.iter().any(|&x| x < u64::MAX / 2));
        assert!(firsts.iter().any(|&x| x >= u64::MAX / 2));
    }
}
