//! Large-rung differential tests: the sharded windowed executor must
//! reproduce the serial observable history bit-for-bit at 100 000 actors
//! (always) and 1 000 000 actors (`--ignored`; CI runs it in release).
//!
//! The model is a partitioned ring echo: partition = actor, every eighth
//! call goes to the neighbouring partition, so at shard counts > 1 a
//! steady stream of events crosses shards through the staging lanes and
//! the adaptive lookahead windows — the full synchronized path, not the
//! free-running fast case.

use azsim_core::runtime::{ActorCtx, ActorId, Model};
use azsim_core::shard::{ShardPlan, ShardableModel, ShardedSimulation, WindowTuning};
use azsim_core::SimTime;
use std::time::Duration;

const SERVICE: Duration = Duration::from_micros(4);
const HOP: Duration = Duration::from_micros(2);

struct Ring {
    partitions: u32,
    /// `(partition, handled)` pairs owned by this instance; the unsplit
    /// model owns every partition in index order, a split part exactly one.
    counts: Vec<(u32, u64)>,
}

impl Ring {
    fn new(partitions: u32) -> Self {
        Ring {
            partitions,
            counts: (0..partitions).map(|p| (p, 0)).collect(),
        }
    }
}

impl Model for Ring {
    type Req = (u32, u32);
    type Resp = u32;

    fn handle(&mut self, now: SimTime, _actor: ActorId, req: (u32, u32)) -> (SimTime, u32) {
        let p = req.0;
        let e = if self.counts.len() == 1 {
            &mut self.counts[0]
        } else {
            &mut self.counts[p as usize]
        };
        debug_assert_eq!(e.0, p, "request routed to a part that does not own it");
        e.1 += 1;
        (now + SERVICE, req.1)
    }

    fn partition_of(&self, req: &(u32, u32)) -> Option<u32> {
        Some(req.0)
    }
}

impl ShardableModel for Ring {
    fn split(self, partitions: u32) -> Vec<Self> {
        assert_eq!(partitions, self.partitions);
        self.counts
            .into_iter()
            .map(|c| Ring {
                partitions,
                counts: vec![c],
            })
            .collect()
    }

    fn merge(parts: Vec<Self>) -> Self {
        let partitions = parts.len() as u32;
        let mut counts: Vec<(u32, u64)> = parts.into_iter().flat_map(|p| p.counts).collect();
        counts.sort_unstable();
        Ring { partitions, counts }
    }
}

struct RunOutcome {
    end_time: SimTime,
    requests: u64,
    history_hash: Option<u64>,
    counts: Vec<(u32, u64)>,
    total_events: u64,
    shard_count: usize,
}

fn run(actors: usize, calls: u32, plan: ShardPlan) -> RunOutcome {
    let n = actors as u32;
    let report = ShardedSimulation::new(Ring::new(n), 2012, plan)
        .record_history()
        .run_workers(move |ctx: ActorCtx<Ring>| async move {
            let me = ctx.id().0 as u32;
            let mut acc = 0u64;
            for i in 0..calls {
                let target = if i % 8 == 7 { (me + 1) % n } else { me };
                acc = acc.wrapping_add(ctx.call((target, i)).await as u64);
            }
            acc
        });
    RunOutcome {
        end_time: report.end_time,
        requests: report.requests,
        history_hash: report.history_hash,
        counts: report.model.counts.clone(),
        total_events: report.shard_events.iter().sum(),
        shard_count: report.shard_events.len(),
    }
}

fn differential(actors: usize, calls: u32) {
    let base = ShardPlan::striped(actors, actors as u32, 1).with_hop(HOP);
    let serial = run(actors, calls, base.clone());
    assert_eq!(serial.requests, actors as u64 * calls as u64);
    assert!(serial.counts.iter().all(|&(_, c)| c == calls as u64));
    for shards in [2u32, 4] {
        let shd = run(
            actors,
            calls,
            base.clone()
                .with_shards(shards)
                .with_window_tuning(WindowTuning::Adaptive { target: 0.25 }),
        );
        assert_eq!(
            serial.history_hash, shd.history_hash,
            "observable history diverged at {shards} shards"
        );
        assert_eq!(serial.end_time, shd.end_time);
        assert_eq!(serial.requests, shd.requests);
        assert_eq!(serial.counts, shd.counts);
        assert_eq!(serial.total_events, shd.total_events);
        assert_eq!(shd.shard_count, shards as usize);
    }
}

#[test]
fn hundred_thousand_actor_rung_matches_serial() {
    differential(100_000, 6);
}

/// The million-actor rung. Ignored by default; CI runs it with
/// `--release -- --ignored`.
#[test]
#[ignore]
fn million_actor_rung_matches_serial() {
    differential(1_000_000, 8);
}
