//! Allocation budget for the engine's steady state.
//!
//! The per-shard arenas exist so the hot loop never allocates: actor
//! futures, RNG streams, mailbox slots, the event slab and the heap's
//! entry storage are all sized at launch. These tests pin that property
//! with a counting global allocator: a probe actor snapshots the global
//! allocation count after warmup and again near the end of the run, and
//! the delta across millions of processed events must stay at (near)
//! zero.
//!
//! The allocator counts every allocation in the process, so each
//! measurement holds a global lock to keep concurrently running tests
//! from polluting the window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// Serializes measurements: the counter is process-global.
static MEASURE: Mutex<()> = Mutex::new(());

struct FreeModel;

impl azsim_core::runtime::Model for FreeModel {
    type Req = u64;
    type Resp = u64;
    fn handle(
        &mut self,
        now: azsim_core::SimTime,
        _actor: azsim_core::runtime::ActorId,
        req: u64,
    ) -> (azsim_core::SimTime, u64) {
        (now + std::time::Duration::from_micros(1), req)
    }
}

impl azsim_core::ShardableModel for FreeModel {
    fn split(self, partitions: u32) -> Vec<Self> {
        (0..partitions).map(|_| FreeModel).collect()
    }
    fn merge(_parts: Vec<Self>) -> Self {
        FreeModel
    }
}

/// Run `actors` workers for `per_actor` calls each on the serial executor;
/// actor 0 snapshots the allocation counter after its second call (all
/// launch-time allocation is behind us: every actor future, RNG stream and
/// arena slot is built before the first event pops) and again two calls
/// before the end (before any actor completes). Returns (allocation delta,
/// events inside the window).
fn measured_delta(actors: usize, per_actor: u64) -> (u64, u64) {
    static SNAP_A: AtomicU64 = AtomicU64::new(0);
    static SNAP_B: AtomicU64 = AtomicU64::new(0);
    SNAP_A.store(0, Ordering::SeqCst);
    SNAP_B.store(0, Ordering::SeqCst);
    let body = move |ctx: azsim_core::ActorCtx<FreeModel>| async move {
        let probe = ctx.id().0 == 0;
        let mut acc = 0u64;
        for i in 0..per_actor {
            if probe && i == 2 {
                SNAP_A.store(ALLOCS.load(Ordering::Relaxed), Ordering::SeqCst);
            }
            if probe && i == per_actor - 2 {
                SNAP_B.store(ALLOCS.load(Ordering::Relaxed), Ordering::SeqCst);
            }
            acc = acc.wrapping_add(ctx.call(i).await);
        }
        acc
    };
    let report = azsim_core::Simulation::new(FreeModel, 1).run_workers(actors, body);
    assert_eq!(report.requests, actors as u64 * per_actor);
    let (a, b) = (SNAP_A.load(Ordering::SeqCst), SNAP_B.load(Ordering::SeqCst));
    assert!(b >= a, "snapshots out of order");
    // Window spans per-actor calls 2 .. per_actor-2 across every actor.
    (b - a, (per_actor - 4) * actors as u64)
}

#[test]
fn steady_state_does_not_allocate_at_10k_actors() {
    let _guard = MEASURE.lock().unwrap();
    let (delta, events) = measured_delta(10_000, 16);
    assert!(events > 100_000);
    assert!(
        delta <= 64,
        "steady state allocated {delta} times across {events} events"
    );
}

/// The million-actor rung. Ignored by default (release-only territory);
/// CI runs it with `--release -- --ignored`.
#[test]
#[ignore]
fn steady_state_does_not_allocate_at_1m_actors() {
    let _guard = MEASURE.lock().unwrap();
    let (delta, events) = measured_delta(1_000_000, 8);
    assert!(events > 3_000_000);
    assert!(
        delta <= 64,
        "steady state allocated {delta} times across {events} events"
    );
}

/// The windowed sharded path (staging lanes, parity min-banks, batched
/// drains) must not allocate per event either. Thread spawns and lane
/// setup allocate a fixed amount per run, so compare two runs that differ
/// only in event count: the extra events must cost (near) zero extra
/// allocations.
#[test]
fn windowed_path_allocation_is_independent_of_event_count() {
    let _guard = MEASURE.lock().unwrap();
    let run = |per_actor: u64| -> u64 {
        let body = move |ctx: azsim_core::ActorCtx<FreeModel>| async move {
            let mut acc = 0u64;
            for i in 0..per_actor {
                acc = acc.wrapping_add(ctx.call(i).await);
            }
            acc
        };
        let plan = azsim_core::ShardPlan::striped(256, 256, 4)
            .with_hop(std::time::Duration::from_micros(2));
        let before = ALLOCS.load(Ordering::Relaxed);
        let report = azsim_core::ShardedSimulation::new(FreeModel, 1, plan).run_workers(body);
        assert_eq!(report.requests, 256 * per_actor);
        ALLOCS.load(Ordering::Relaxed) - before
    };
    // Warm both rungs once so lazy one-time allocation (thread-local
    // interners, lock shards, ...) is off the books.
    run(64);
    run(128);
    let small = run(64);
    let big = run(128);
    let extra_events = 256 * 64;
    let extra_allocs = big.saturating_sub(small);
    assert!(
        extra_allocs < extra_events / 20,
        "doubling events cost {extra_allocs} extra allocations \
         ({extra_events} extra events)"
    );
}
