//! Offline stand-in for `parking_lot`: the subset this workspace uses
//! (`Mutex` with the non-poisoning lock API), backed by `std::sync`.
//! A poisoned std lock is recovered rather than propagated, matching
//! parking_lot's no-poisoning semantics.

use std::sync::Mutex as StdMutex;
pub use std::sync::MutexGuard;

/// A mutex whose `lock` never fails (poisoning is swallowed).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access through `&mut self` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn poison_is_recovered() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }
}
