//! Offline stand-in for `criterion`: the benchmark-definition surface the
//! `azurebench` bench targets use, with a minimal wall-clock timing loop
//! instead of criterion's statistical machinery. Each benchmark runs its
//! routine `sample_size` times (after one warm-up) and prints the mean
//! iteration time; throughput annotations print derived MB/s.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier combining a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, one call per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (untimed) so first-touch costs don't skew tiny sample
        // counts.
        let _ = routine();
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_samples: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.default_samples,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.default_samples, None, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: u64,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n as u64;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.samples,
            self.throughput,
            f,
        );
        self
    }

    /// Run a parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.samples,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// End the group (report separator).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: u64,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: samples.max(1),
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.samples.max(1) as f64;
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let mbps = n as f64 / per_iter / (1024.0 * 1024.0);
            println!(
                "bench {label:<60} {:>12.3?} /iter  {mbps:>10.1} MiB/s",
                Duration::from_secs_f64(per_iter)
            );
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / per_iter;
            println!(
                "bench {label:<60} {:>12.3?} /iter  {eps:>10.0} elem/s",
                Duration::from_secs_f64(per_iter)
            );
        }
        None => {
            println!(
                "bench {label:<60} {:>12.3?} /iter",
                Duration::from_secs_f64(per_iter)
            );
        }
    }
}

/// Collect benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        benches(&mut c);
        c.bench_function("top-level", |b| b.iter(|| 2 * 2));
    }
}
