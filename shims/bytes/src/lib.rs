//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is an immutable, cheaply-cloneable byte buffer backed by an
//! `Arc<[u8]>` plus a view window, so `clone()` and `slice()` are O(1) and
//! never copy payload — the property the simulated storage services rely
//! on when a 64 MB blob body flows through several layers. [`BytesMut`] is
//! a thin growable builder that freezes into a [`Bytes`].

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer over a static slice (copied once; the real crate borrows,
    /// but no caller here is latency-sensitive on construction).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-view.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds of {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The view as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Zero-copy concatenation of two *adjacent* views of the same backing
    /// buffer: if `next` starts exactly where `self` ends in the same
    /// allocation, return the widened view. Otherwise `None` — the caller
    /// has to copy. (The real crate's `BytesMut::unsplit` plays this role;
    /// the storage models use it to reassemble reads from a buffer that
    /// was split into aligned pages on write.)
    pub fn try_join(&self, next: &Bytes) -> Option<Bytes> {
        if Arc::ptr_eq(&self.data, &next.data) && self.end == next.start {
            Some(Bytes {
                data: Arc::clone(&self.data),
                start: self.start,
                end: next.end,
            })
        } else {
            None
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.len() > 64 {
            write!(f, "…(+{} bytes)", self.len() - 64)?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// A zero-filled buffer of length `len`.
    pub fn zeroed(len: usize) -> Self {
        BytesMut { buf: vec![0; len] }
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.buf.extend_from_slice(other);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Resize, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    /// Convert into an immutable [`Bytes`] (consumes the buffer; no copy).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let c = b.clone();
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(b, c);
        assert_eq!(Arc::strong_count(&b.data), 3);
    }

    #[test]
    fn builder_roundtrip() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"abc");
        m.extend_from_slice(b"def");
        let b = m.freeze();
        assert_eq!(&b[..], b"abcdef");
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn zeroed_is_writable_through_deref() {
        let mut m = BytesMut::zeroed(4);
        m[1..3].copy_from_slice(&[7, 8]);
        assert_eq!(&m.freeze()[..], &[0, 7, 8, 0]);
    }

    #[test]
    fn try_join_widens_adjacent_views_only() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5, 6]);
        let lo = b.slice(0..3);
        let hi = b.slice(3..6);
        let joined = lo.try_join(&hi).expect("adjacent views must join");
        assert_eq!(joined, b);
        assert_eq!(Arc::strong_count(&b.data), 4, "join must not copy");
        // Non-adjacent, overlapping, and foreign views refuse to join.
        assert!(hi.try_join(&lo).is_none());
        assert!(lo.try_join(&b.slice(2..4)).is_none());
        assert!(lo.try_join(&Bytes::from(vec![4, 5, 6])).is_none());
    }

    #[test]
    fn equality_across_views() {
        let a = Bytes::from(vec![9, 9, 1, 2]).slice(2..);
        let b = Bytes::from(vec![1, 2]);
        assert_eq!(a, b);
        assert_eq!(a, &[1u8, 2][..]);
    }
}
