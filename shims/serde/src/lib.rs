//! Offline stand-in for `serde`.
//!
//! The real serde separates the data model from formats; every consumer in
//! this workspace only ever serializes to and from JSON (via the
//! `serde_json` shim), so these traits are JSON-oriented directly:
//! [`ser::Serialize`] writes JSON text, [`de::Deserialize`] reads from a
//! parsed [`value::Value`] tree. The `#[derive(Serialize, Deserialize)]`
//! macros (re-exported from the `serde_derive` shim) generate impls of
//! these traits for structs with named fields and for enums with unit,
//! tuple and struct variants (externally tagged, like upstream serde).
//!
//! Integer round-trips are exact for the full `u64`/`i64` range: numbers
//! are kept as raw decimal text inside [`value::Value`] and parsed
//! directly into the target type, never through `f64`.

// The derive macros and the traits share names, in separate namespaces —
// exactly how upstream serde's root re-exports behave.
pub use de::{Deserialize, DeserializeOwned};
pub use ser::Serialize;
pub use serde_derive::{Deserialize, Serialize};

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Construct from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// The parsed JSON tree deserialization reads from.
pub mod value {
    use super::DeError;

    /// A JSON value. Numbers keep their raw decimal text so `u64`/`i64`
    /// round-trips are lossless.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// A number, as its raw token text.
        Num(String),
        /// A string (unescaped).
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in document order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The string payload, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The members, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(m) => Some(m),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
    }

    /// Look up `key` in an object's members.
    pub fn find<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn err(&self, msg: &str) -> DeError {
            DeError::new(format!("{msg} at byte {}", self.pos))
        }

        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), DeError> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.err(&format!("expected {:?}", b as char)))
            }
        }

        fn parse_value(&mut self) -> Result<Value, DeError> {
            self.skip_ws();
            match self.peek() {
                Some(b'n') => self.keyword("null", Value::Null),
                Some(b't') => self.keyword("true", Value::Bool(true)),
                Some(b'f') => self.keyword("false", Value::Bool(false)),
                Some(b'"') => Ok(Value::Str(self.parse_string()?)),
                Some(b'[') => self.parse_array(),
                Some(b'{') => self.parse_object(),
                Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
                _ => Err(self.err("unexpected token")),
            }
        }

        fn keyword(&mut self, kw: &str, v: Value) -> Result<Value, DeError> {
            if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
                self.pos += kw.len();
                Ok(v)
            } else {
                Err(self.err("invalid literal"))
            }
        }

        fn parse_number(&mut self) -> Result<Value, DeError> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while let Some(b) = self.peek() {
                if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if self.pos == start {
                return Err(self.err("empty number"));
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| self.err("non-utf8 number"))?;
            Ok(Value::Num(text.to_string()))
        }

        fn parse_string(&mut self) -> Result<String, DeError> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(self.err("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or_else(|| self.err("truncated \\u escape"))?;
                                let hex = std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad \\u escape"))?;
                                let cp = u32::from_str_radix(hex, 16)
                                    .map_err(|_| self.err("bad \\u escape"))?;
                                // Surrogate pairs: recombine if a low
                                // surrogate follows.
                                let ch = if (0xD800..0xDC00).contains(&cp) {
                                    let rest = &self.bytes[self.pos + 5..];
                                    if rest.starts_with(b"\\u") {
                                        let hex2 = rest
                                            .get(2..6)
                                            .and_then(|h| std::str::from_utf8(h).ok())
                                            .ok_or_else(|| self.err("bad surrogate"))?;
                                        let lo = u32::from_str_radix(hex2, 16)
                                            .map_err(|_| self.err("bad surrogate"))?;
                                        self.pos += 6;
                                        let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                        char::from_u32(c)
                                            .ok_or_else(|| self.err("bad surrogate pair"))?
                                    } else {
                                        return Err(self.err("lone surrogate"));
                                    }
                                } else {
                                    char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?
                                };
                                out.push(ch);
                                self.pos += 4;
                            }
                            _ => return Err(self.err("bad escape")),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| self.err("non-utf8 string"))?;
                        let ch = rest.chars().next().unwrap();
                        out.push(ch);
                        self.pos += ch.len_utf8();
                    }
                }
            }
        }

        fn parse_array(&mut self) -> Result<Value, DeError> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.parse_value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                    }
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(self.err("expected ',' or ']'")),
                }
            }
        }

        fn parse_object(&mut self) -> Result<Value, DeError> {
            self.expect(b'{')?;
            let mut members = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                self.skip_ws();
                let key = self.parse_string()?;
                self.skip_ws();
                self.expect(b':')?;
                let val = self.parse_value()?;
                members.push((key, val));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                    }
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(self.err("expected ',' or '}'")),
                }
            }
        }
    }

    /// Parse one JSON document (trailing whitespace allowed).
    pub fn parse(input: &[u8]) -> Result<Value, DeError> {
        let mut p = Parser {
            bytes: input,
            pos: 0,
        };
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage"));
        }
        Ok(v)
    }
}

/// Serialization: types that can write themselves as JSON.
pub mod ser {
    /// Write `self` as JSON text onto `out`.
    pub trait Serialize {
        /// Append this value's JSON encoding to `out`.
        fn write_json(&self, out: &mut String);
    }

    /// Escape and append a JSON string literal.
    pub fn write_escaped(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    macro_rules! int_impl {
        ($($t:ty),*) => {$(
            impl Serialize for $t {
                fn write_json(&self, out: &mut String) {
                    out.push_str(&self.to_string());
                }
            }
        )*};
    }
    int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_impl {
        ($($t:ty),*) => {$(
            impl Serialize for $t {
                fn write_json(&self, out: &mut String) {
                    if self.is_finite() {
                        // Rust's shortest-roundtrip formatting; always
                        // parseable back to the identical value.
                        out.push_str(&format!("{self:?}"));
                    } else {
                        out.push_str("null");
                    }
                }
            }
        )*};
    }
    float_impl!(f32, f64);

    impl Serialize for bool {
        fn write_json(&self, out: &mut String) {
            out.push_str(if *self { "true" } else { "false" });
        }
    }

    impl Serialize for String {
        fn write_json(&self, out: &mut String) {
            write_escaped(self, out);
        }
    }

    impl Serialize for str {
        fn write_json(&self, out: &mut String) {
            write_escaped(self, out);
        }
    }

    impl<T: Serialize + ?Sized> Serialize for &T {
        fn write_json(&self, out: &mut String) {
            (**self).write_json(out);
        }
    }

    impl<T: Serialize> Serialize for Vec<T> {
        fn write_json(&self, out: &mut String) {
            self.as_slice().write_json(out);
        }
    }

    impl<T: Serialize> Serialize for [T] {
        fn write_json(&self, out: &mut String) {
            out.push('[');
            for (i, item) in self.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                item.write_json(out);
            }
            out.push(']');
        }
    }

    impl<T: Serialize> Serialize for Option<T> {
        fn write_json(&self, out: &mut String) {
            match self {
                None => out.push_str("null"),
                Some(v) => v.write_json(out),
            }
        }
    }

    macro_rules! tuple_impl {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Serialize),+> Serialize for ($($t,)+) {
                fn write_json(&self, out: &mut String) {
                    out.push('[');
                    let mut first = true;
                    $(
                        if !first { out.push(','); }
                        first = false;
                        self.$n.write_json(out);
                    )+
                    let _ = first;
                    out.push(']');
                }
            }
        )*};
    }
    tuple_impl! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }
}

/// Deserialization: types constructible from a parsed [`value::Value`].
pub mod de {
    use super::value::Value;
    use super::DeError;

    /// Construct `Self` from a JSON value tree.
    pub trait Deserialize: Sized {
        /// Read one value.
        fn from_value(v: &Value) -> Result<Self, DeError>;
    }

    /// Marker matching upstream serde's owned-deserialization bound; every
    /// shim [`Deserialize`] qualifies.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}

    macro_rules! int_impl {
        ($($t:ty),*) => {$(
            impl Deserialize for $t {
                fn from_value(v: &Value) -> Result<Self, DeError> {
                    match v {
                        Value::Num(raw) => raw
                            .parse::<$t>()
                            .or_else(|_| {
                                // Accept exponent/decimal forms that are
                                // still exact integers (e.g. "1e3").
                                raw.parse::<f64>()
                                    .map_err(|_| ())
                                    .and_then(|f| {
                                        if f.fract() == 0.0 {
                                            Ok(f as $t)
                                        } else {
                                            Err(())
                                        }
                                    })
                                    .map_err(|_| {
                                        DeError::new(format!(
                                            "bad {} literal {raw:?}",
                                            stringify!($t)
                                        ))
                                    })
                            }),
                        other => Err(DeError::new(format!(
                            "expected number, got {other:?}"
                        ))),
                    }
                }
            }
        )*};
    }
    int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_impl {
        ($($t:ty),*) => {$(
            impl Deserialize for $t {
                fn from_value(v: &Value) -> Result<Self, DeError> {
                    match v {
                        Value::Num(raw) => raw.parse::<$t>().map_err(|_| {
                            DeError::new(format!("bad float literal {raw:?}"))
                        }),
                        Value::Null => Ok(<$t>::NAN),
                        other => Err(DeError::new(format!(
                            "expected number, got {other:?}"
                        ))),
                    }
                }
            }
        )*};
    }
    float_impl!(f32, f64);

    impl Deserialize for bool {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            match v {
                Value::Bool(b) => Ok(*b),
                other => Err(DeError::new(format!("expected bool, got {other:?}"))),
            }
        }
    }

    impl Deserialize for String {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            match v {
                Value::Str(s) => Ok(s.clone()),
                other => Err(DeError::new(format!("expected string, got {other:?}"))),
            }
        }
    }

    impl<T: Deserialize> Deserialize for Vec<T> {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            match v {
                Value::Arr(items) => items.iter().map(T::from_value).collect(),
                other => Err(DeError::new(format!("expected array, got {other:?}"))),
            }
        }
    }

    impl<T: Deserialize> Deserialize for Option<T> {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            match v {
                Value::Null => Ok(None),
                other => T::from_value(other).map(Some),
            }
        }
    }

    macro_rules! tuple_impl {
        ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
            impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
                fn from_value(v: &Value) -> Result<Self, DeError> {
                    let items = v.as_array().ok_or_else(|| {
                        DeError::new("expected array for tuple")
                    })?;
                    if items.len() != $len {
                        return Err(DeError::new(format!(
                            "expected {}-tuple, got {} elements",
                            $len,
                            items.len()
                        )));
                    }
                    Ok(($($t::from_value(&items[$n])?,)+))
                }
            }
        )*};
    }
    tuple_impl! {
        (1; 0 A)
        (2; 0 A, 1 B)
        (3; 0 A, 1 B, 2 C)
        (4; 0 A, 1 B, 2 C, 3 D)
        (5; 0 A, 1 B, 2 C, 3 D, 4 E)
        (6; 0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }
}

#[cfg(test)]
mod tests {
    use super::de::Deserialize;
    use super::ser::Serialize;
    use super::value;

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let mut s = String::new();
        v.write_json(&mut s);
        let parsed = value::parse(s.as_bytes()).unwrap();
        assert_eq!(T::from_value(&parsed).unwrap(), v, "json was {s}");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(0u32);
        roundtrip(std::f64::consts::PI);
        roundtrip(-0.0f64);
        roundtrip(true);
        roundtrip(String::from("hé \"quoted\"\n\tend"));
        roundtrip(Some(5u8));
        roundtrip(Option::<u8>::None);
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(vec![(1.5f64, -2.5f64), (0.0, 1e300)]);
        roundtrip((1usize, (2.0f64, 3.0f64), 4u64));
        roundtrip(Vec::<String>::new());
    }

    #[test]
    fn u64_precision_is_exact() {
        // Would corrupt through an f64-based number model.
        roundtrip(9_007_199_254_740_993u64); // 2^53 + 1
        roundtrip(18_446_744_073_709_551_615u64);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(value::parse(b"{\"a\":}").is_err());
        assert!(value::parse(b"[1,2").is_err());
        assert!(value::parse(b"12 34").is_err());
    }
}
