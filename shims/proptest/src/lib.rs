//! Offline stand-in for `proptest`: randomized property testing with the
//! same surface this workspace uses (`proptest!`, range/tuple/vec/bool
//! strategies, `prop_assert*`, `ProptestConfig::with_cases`).
//!
//! Differences from the real crate, deliberately accepted:
//! - no shrinking — a failing case reports its values (via the assertion
//!   message) and the case number, but is not minimized;
//! - cases are generated from a fixed per-test seed (hash of the test's
//!   module path and name), so runs are fully deterministic with no
//!   `PROPTEST_*` environment knobs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hash::{Hash, Hasher};

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The strategy value usually imported.
    pub const ANY: Any = Any;

    impl crate::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut SmallRng) -> bool {
            rng.random()
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Length specification for [`vec`]: exact, or uniform in a half-open
    /// range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of another strategy's values.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with the given element strategy and length.
    pub fn vec<S: crate::Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: crate::Strategy> crate::Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rng.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner types (`TestCaseError`).
pub mod test_runner {
    /// A test-case failure with a reason.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failed case with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }

        /// The failure reason.
        pub fn message(&self) -> &str {
            &self.0
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Commonly-imported names (`ProptestConfig`).
pub mod prelude {
    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate runs 256; 64 keeps simulation-heavy
            // properties fast while still exercising variety.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Drive one property: `cases` deterministic random cases seeded from the
/// test's full path. Panics (failing the `#[test]`) on the first `Err`.
pub fn run_cases<F>(test_path: &str, config: &prelude::ProptestConfig, mut case: F)
where
    F: FnMut(&mut SmallRng) -> Result<(), test_runner::TestCaseError>,
{
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    test_path.hash(&mut hasher);
    let base = hasher.finish();
    for i in 0..config.cases {
        let mut rng =
            SmallRng::seed_from_u64(base ^ u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(e) = case(&mut rng) {
            panic!(
                "property {test_path} failed at case {i}/{}: {}",
                config.cases,
                e.message()
            );
        }
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written in the block, as
/// throughout this workspace) running [`run_cases`] over its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::prelude::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                &__config,
                |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Assert inside a property body; failure aborts only the current case
/// with a reportable reason.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __l,
                            __r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!($($fmt)+),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    crate::proptest! {
        #![proptest_config(crate::prelude::ProptestConfig::with_cases(40))]
        /// Strategies respect their ranges and sizes.
        #[test]
        fn ranges_and_vecs_in_bounds(
            x in 3u64..17,
            b in crate::bool::ANY,
            mut v in crate::collection::vec((0u8..=4, -2i64..3), 2..9),
        ) {
            crate::prop_assert!((3..17).contains(&x));
            crate::prop_assert!(matches!(b, true | false));
            crate::prop_assert!((2..9).contains(&v.len()), "len {}", v.len());
            for (a, c) in &v {
                crate::prop_assert!(*a <= 4);
                crate::prop_assert!((-2..3).contains(c));
            }
            v.clear();
            crate::prop_assert_eq!(v.len(), 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let collect = || {
            let mut out = Vec::new();
            crate::run_cases(
                "det-check",
                &crate::prelude::ProptestConfig::with_cases(10),
                |rng| {
                    out.push(crate::Strategy::generate(&(0u64..1000), rng));
                    Ok(())
                },
            );
            out
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        crate::run_cases(
            "fail-check",
            &crate::prelude::ProptestConfig::with_cases(3),
            |_| Err(crate::test_runner::TestCaseError::fail("boom")),
        );
    }
}
