//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! This workspace must build without network access, so the external
//! `rand` dependency is replaced by this shim implementing exactly the
//! surface the simulator uses: [`RngCore`], [`Rng::random`],
//! [`Rng::random_range`], [`SeedableRng`] and [`rngs::SmallRng`].
//!
//! `SmallRng` here is xoshiro256++ (the same family the real crate uses on
//! 64-bit targets), seeded through SplitMix64, so streams are of high
//! quality and fully deterministic. Exact output values differ from the
//! upstream crate — nothing in this repository depends on upstream value
//! sequences, only on determinism per seed.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with uniform random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an RNG's full output range
/// (the shim's analogue of `StandardUniform: Distribution<T>`).
pub trait SampleStandard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let unit = <$t as SampleStandard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = <$t as SampleStandard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_range!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly over the type's whole range ([0, 1) for
    /// floats).
    fn random<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small fast RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; reseed through
            // SplitMix64 in that (pathological) case.
            if s.iter().all(|&w| w == 0) {
                return Self::seed_from_u64(0);
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.random_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i: i64 = r.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let b: u8 = r.random_range(0u8..=255);
            let _ = b;
            let unit: f64 = r.random();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
