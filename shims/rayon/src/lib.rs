//! Offline stand-in for `rayon` that actually runs in parallel.
//!
//! `par_iter()`/`into_par_iter()` split the input into contiguous chunks —
//! one per available core — and map each chunk on a scoped `std::thread`.
//! Results are stitched back together in input order, so `collect()` is
//! byte-for-byte identical to the sequential iterator, and `sum()` folds
//! the mapped values strictly left-to-right (the parallelism is confined to
//! the `map`, so even floating-point sums associate exactly as the
//! sequential code would).
//!
//! This is deliberately a small subset of rayon — `map` followed by
//! `collect`/`sum` — which is all the workloads here use. It is not a
//! work-stealing scheduler: chunks are static, so badly skewed per-item
//! cost will not balance the way real rayon does.

use std::num::NonZeroUsize;

/// Number of worker threads to fan a chunked map over.
fn threads_for(items: usize) -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.max(1))
}

/// Map `items` chunk-parallel with `f`, preserving input order.
fn chunked_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads_for(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut pending: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items.into_iter();
    loop {
        let c: Vec<T> = items.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        pending.push(c);
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = pending
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel map worker panicked"))
            .collect()
    })
}

/// A pending parallel map over owned items.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Run the map and collect results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        chunked_map(self.items, self.f).into_iter().collect()
    }

    /// Run the map and sum the results in input order.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        chunked_map(self.items, self.f).into_iter().sum()
    }
}

/// A parallel iterator over a collection.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map each item with `f`, in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

pub mod prelude {
    pub use super::{ParIter, ParMap};

    /// Parallel iteration over references, rayon-shaped.
    pub trait IntoParallelRefIterator<'a> {
        /// The reference item type.
        type Item: Send + 'a;
        /// Parallel iteration over references.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            self.as_slice().par_iter()
        }
    }

    /// Parallel iteration by value, rayon-shaped.
    pub trait IntoParallelIterator {
        /// The owned item type.
        type Item: Send;
        /// Parallel iteration by value.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        fn into_par_iter(self) -> ParIter<usize> {
            ParIter {
                items: self.collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn order_is_preserved_across_chunks() {
        let v: Vec<usize> = (0..10_000).collect();
        let mapped: Vec<usize> = v.par_iter().map(|x| x + 1).collect();
        let expected: Vec<usize> = (1..10_001).collect();
        assert_eq!(mapped, expected);
    }

    #[test]
    fn sum_matches_sequential_association() {
        let v: Vec<f64> = (0..5_000).map(|i| (i as f64) * 0.1).collect();
        let par: f64 = v.par_iter().map(|x| x * 3.0).sum();
        let seq: f64 = v.iter().map(|x| x * 3.0).sum();
        assert_eq!(par.to_bits(), seq.to_bits(), "sum must fold in input order");
    }

    #[test]
    fn into_par_iter_consumes_by_value() {
        let squares: Vec<usize> = (0..100usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares.len(), 100);
        assert_eq!(squares[9], 81);
        let owned: Vec<String> = vec!["a".to_string(), "b".to_string()]
            .into_par_iter()
            .map(|s| s + "!")
            .collect();
        assert_eq!(owned, vec!["a!", "b!"]);
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let v: Vec<usize> = (0..64).collect();
        let _: Vec<usize> = v
            .par_iter()
            .map(|x| {
                seen.lock().unwrap().insert(std::thread::current().id());
                *x
            })
            .collect();
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let distinct = seen.lock().unwrap().len();
        assert!(
            distinct >= cores.min(2),
            "expected parallel execution, saw {distinct} thread(s) on a {cores}-core host"
        );
    }
}
