//! Offline stand-in for `rayon`. `par_iter()`/`into_par_iter()` return the
//! ordinary sequential iterators — same results, no parallelism. Adequate
//! here because the only user is an example's local compute phase, where
//! parallel speedup is a nicety, not a correctness property.

pub mod prelude {
    /// Sequential stand-in for rayon's `IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'a> {
        /// The (sequential) iterator type.
        type Iter: Iterator;
        /// "Parallel" iteration over references.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    /// Sequential stand-in for rayon's `IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// The (sequential) iterator type.
        type Iter: Iterator;
        /// "Parallel" iteration by value.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }
}
