//! Offline stand-in for `crossbeam`: only the `channel` module, backed by
//! `std::sync::mpsc`. The simulator uses channels strictly point-to-point
//! (coordinator ↔ actor), so mpsc's single-consumer limitation is
//! invisible here; `Sender` is `Clone` either way.

pub mod channel {
    use std::sync::mpsc;

    /// Send error (receiver disconnected); carries the value back.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        // No `T: Debug` bound, matching crossbeam: the payload is opaque.
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Receive error (all senders disconnected).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Sending half. Unlike raw mpsc, one type covers both the unbounded
    /// and bounded (rendezvous/buffered) flavours, as in crossbeam.
    pub enum Sender<T> {
        /// From [`unbounded`].
        Unbounded(mpsc::Sender<T>),
        /// From [`bounded`].
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking if a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Sender::Bounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }
    }

    /// A channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver { inner: rx })
    }

    /// A channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop((tx, tx2));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn bounded_crosses_threads() {
        let (tx, rx) = channel::bounded(1);
        let h = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        h.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
