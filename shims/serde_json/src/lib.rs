//! Offline stand-in for `serde_json`, layered on the shimmed `serde`
//! traits (which are JSON-oriented directly, so this crate is mostly
//! plumbing and error-type adaptation).

use serde::de::DeserializeOwned;
use serde::ser::Serialize;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching upstream.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// Serialize `value` as JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let value = serde::value::parse(bytes).map_err(|e| Error(e.0))?;
    T::from_value(&value).map_err(|e| Error(e.0))
}

/// Deserialize from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    from_slice(s.as_bytes())
}

#[cfg(test)]
mod tests {
    #[test]
    fn string_roundtrip() {
        let v = vec![(1u64, "a".to_string()), (2, "b\"c".to_string())];
        let bytes = super::to_vec(&v).unwrap();
        let back: Vec<(u64, String)> = super::from_slice(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(super::from_slice::<u32>(b"not json").is_err());
        assert!(super::from_slice::<u32>(b"").is_err());
    }
}
