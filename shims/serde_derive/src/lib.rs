//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shimmed `serde` traits without `syn`/`quote` (neither is available in
//! this sandbox): the input `TokenStream` is walked by hand, the impl is
//! assembled as source text, and `str::parse` turns it back into tokens.
//!
//! Supported shapes — everything this workspace derives on:
//! - structs with named fields (any visibility, generic type params)
//! - enums with unit, tuple and struct variants (externally tagged,
//!   matching upstream serde's default representation)
//!
//! Bounds on type parameters at the definition site are not re-emitted;
//! each type param simply gains a `Serialize`/`Deserialize` bound on the
//! generated impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: `name` (type tokens are skipped — codegen never needs
/// them because `from_value`/`write_json` dispatch through the trait).
struct Field {
    name: String,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    /// Type parameter idents, e.g. `["M"]` for `MrTask<M>`.
    type_params: Vec<String>,
    shape: Shape,
}

fn parse_input(input: TokenStream) -> Input {
    let mut toks = input.into_iter().peekable();

    // Outer attributes (incl. doc comments) and visibility.
    skip_attrs_and_vis(&mut toks);

    let kw = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("derive: expected type name, got {other:?}"),
    };

    // Optional generic parameter list `<...>`.
    let mut type_params = Vec::new();
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        toks.next();
        let mut depth = 1usize;
        // A param ident is one that appears at depth 1 directly after `<`
        // or a depth-1 comma (i.e. not inside bounds or defaults).
        let mut expect_param = true;
        while let Some(tt) = toks.next() {
            match &tt {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ',' if depth == 1 => expect_param = true,
                    '\'' => {
                        // Lifetime: consume its ident, never a type param.
                        toks.next();
                        expect_param = false;
                    }
                    _ => expect_param = false,
                },
                TokenTree::Ident(i) if depth == 1 && expect_param => {
                    type_params.push(i.to_string());
                    expect_param = false;
                }
                _ => expect_param = false,
            }
        }
    }

    // Skip anything up to the body group (e.g. a `where` clause).
    let body = loop {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(_) => continue,
            None => panic!("derive: `{name}` has no braced body (tuple/unit structs unsupported)"),
        }
    };

    let shape = match kw.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body.stream())),
        "enum" => Shape::Enum(parse_variants(body.stream())),
        other => panic!("derive: unsupported item kind `{other}`"),
    };

    Input {
        name,
        type_params,
        shape,
    }
}

fn skip_attrs_and_vis(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                // The bracketed attribute body.
                toks.next();
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                // `pub(crate)` / `pub(super)` restriction group.
                if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    toks.next();
                }
            }
            _ => return,
        }
    }
}

/// Parse `name: Type, ...` (named-field struct body or struct-variant body).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => panic!("derive: expected field name, got {other:?}"),
            None => break,
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("derive: expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type: everything up to a comma at `<>` depth 0. Groups
        // are atomic token trees, so parens/brackets need no tracking.
        let mut depth = 0usize;
        for tt in toks.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(Field { name });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => panic!("derive: expected variant name, got {other:?}"),
            None => break,
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                toks.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        // Optional discriminant (`= expr`) then the separating comma.
        for tt in toks.by_ref() {
            if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Number of fields in a tuple-variant body: top-level commas + 1.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0usize;
    let mut fields = 1usize;
    let mut any = false;
    for tt in stream {
        any = true;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => fields += 1,
                _ => {}
            }
        }
    }
    if any {
        fields
    } else {
        0
    }
}

/// `impl<A: Bound, B: Bound>` header + `Name<A, B>` type, or plain forms
/// when there are no type params.
fn impl_header(input: &Input, bound: &str) -> (String, String) {
    if input.type_params.is_empty() {
        (String::from("impl"), input.name.clone())
    } else {
        let params: Vec<String> = input
            .type_params
            .iter()
            .map(|p| format!("{p}: {bound}"))
            .collect();
        (
            format!("impl<{}>", params.join(", ")),
            format!("{}<{}>", input.name, input.type_params.join(", ")),
        )
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let (header, ty) = impl_header(&input, "::serde::ser::Serialize");
    let mut body = String::new();

    match &input.shape {
        Shape::Struct(fields) => {
            body.push_str("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "out.push_str(\"\\\"{0}\\\":\");\n\
                     ::serde::ser::Serialize::write_json(&self.{0}, out);\n",
                    f.name
                ));
            }
            body.push_str("out.push('}');\n");
        }
        Shape::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let name = &input.name;
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        body.push_str(&format!(
                            "{name}::{vn} => out.push_str(\"\\\"{vn}\\\"\"),\n"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        body.push_str(&format!(
                            "{name}::{vn}({}) => {{\n\
                             out.push_str(\"{{\\\"{vn}\\\":[\");\n",
                            binds.join(", ")
                        ));
                        for (i, b) in binds.iter().enumerate() {
                            if i > 0 {
                                body.push_str("out.push(',');\n");
                            }
                            body.push_str(&format!(
                                "::serde::ser::Serialize::write_json({b}, out);\n"
                            ));
                        }
                        body.push_str("out.push_str(\"]}\");\n},\n");
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        body.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n\
                             out.push_str(\"{{\\\"{vn}\\\":{{\");\n",
                            binds.join(", ")
                        ));
                        for (i, f) in fields.iter().enumerate() {
                            if i > 0 {
                                body.push_str("out.push(',');\n");
                            }
                            body.push_str(&format!(
                                "out.push_str(\"\\\"{0}\\\":\");\n\
                                 ::serde::ser::Serialize::write_json({0}, out);\n",
                                f.name
                            ));
                        }
                        body.push_str("out.push_str(\"}}\");\n},\n");
                    }
                }
            }
            body.push_str("}\n");
        }
    }

    let out = format!(
        "{header} ::serde::ser::Serialize for {ty} {{\n\
         fn write_json(&self, out: &mut ::std::string::String) {{\n\
         {body}\
         }}\n\
         }}\n"
    );
    out.parse()
        .expect("derive(Serialize): generated code failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let (header, ty) = impl_header(&input, "::serde::de::Deserialize");
    let name = &input.name;
    let mut body = String::new();

    match &input.shape {
        Shape::Struct(fields) => {
            body.push_str(&format!(
                "let obj = v.as_object().ok_or_else(|| \
                 ::serde::DeError::new(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n"
            ));
            for f in fields {
                body.push_str(&field_from_obj(name, &f.name));
            }
            body.push_str("})\n");
        }
        Shape::Enum(variants) => {
            // Externally tagged: a bare string selects a unit variant, a
            // single-key object selects a data-carrying one.
            body.push_str("match v {\n");
            body.push_str("::serde::value::Value::Str(tag) => match tag.as_str() {\n");
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    body.push_str(&format!(
                        "\"{0}\" => ::std::result::Result::Ok({name}::{0}),\n",
                        v.name
                    ));
                }
            }
            body.push_str(&format!(
                "other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown {name} variant {{other:?}}\"))),\n}},\n"
            ));
            body.push_str(
                "::serde::value::Value::Obj(members) if members.len() == 1 => {\n\
                 let (tag, inner) = &members[0];\n\
                 match tag.as_str() {\n",
            );
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Tuple(arity) => {
                        body.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let arr = inner.as_array().ok_or_else(|| \
                             ::serde::DeError::new(\"expected array for {name}::{vn}\"))?;\n\
                             if arr.len() != {arity} {{\n\
                             return ::std::result::Result::Err(::serde::DeError::new(\
                             \"wrong arity for {name}::{vn}\"));\n}}\n\
                             ::std::result::Result::Ok({name}::{vn}(\n"
                        ));
                        for i in 0..*arity {
                            body.push_str(&format!(
                                "::serde::de::Deserialize::from_value(&arr[{i}])?,\n"
                            ));
                        }
                        body.push_str("))\n},\n");
                    }
                    VariantKind::Struct(fields) => {
                        body.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let obj = inner.as_object().ok_or_else(|| \
                             ::serde::DeError::new(\"expected object for {name}::{vn}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n"
                        ));
                        for f in fields {
                            body.push_str(&field_from_obj(&format!("{name}::{vn}"), &f.name));
                        }
                        body.push_str("})\n},\n");
                    }
                }
            }
            body.push_str(&format!(
                "other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                 }}\n}},\n\
                 other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"expected {name}, got {{other:?}}\"))),\n\
                 }}\n"
            ));
        }
    }

    let out = format!(
        "{header} ::serde::de::Deserialize for {ty} {{\n\
         fn from_value(v: &::serde::value::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\
         }}\n\
         }}\n"
    );
    out.parse()
        .expect("derive(Deserialize): generated code failed to parse")
}

/// `field: Deserialize::from_value(find(obj, "field")?)?,` with a
/// missing-field error naming the owner type.
fn field_from_obj(owner: &str, field: &str) -> String {
    format!(
        "{field}: ::serde::de::Deserialize::from_value(\
         ::serde::value::find(obj, \"{field}\").ok_or_else(|| \
         ::serde::DeError::new(\"missing field {field} in {owner}\"))?)?,\n"
    )
}
